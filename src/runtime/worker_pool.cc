#include "runtime/worker_pool.h"

#include <algorithm>

namespace ps3::runtime {

namespace {

/// Chunks per participating lane: enough slack for stealing to balance
/// skew, few enough that per-chunk locking (and the per-chunk round-robin
/// job re-pick) stays negligible.
constexpr size_t kChunksPerLane = 4;

/// Hard ceiling on resident lanes. Growth follows the peak requested lane
/// count and never shrinks, so an errant num_threads (a garbage
/// PS3_THREADS value, a misconfigured Featurizer) must not pin thousands
/// of sleeping threads for the process lifetime.
constexpr size_t kMaxLanes = 256;

/// Contested-pick ratio: when both classes have servable work,
/// interactive wins this many picks for every one batch pick. High
/// enough that an interactive query runs at near-full lane share under
/// batch load, low enough that batch aggregate progress is guaranteed
/// (never starved, merely slowed) while interactive work is in flight.
constexpr size_t kInteractivePickWeight = 4;

/// Cancel-poll stride for the inline (single-lane) ParallelFor path,
/// standing in for the chunk boundaries the pooled path polls at. Items
/// are partition- or chunk-sized, so even a stride of 64 keeps poll cost
/// invisible while bounding abort latency to a few items.
constexpr size_t kInlineCancelStride = 64;

thread_local WorkerPool* t_pool = nullptr;
thread_local size_t t_lane = 0;

/// Single-lane execution with the same cooperative-cancel contract as the
/// pooled path: polls every kInlineCancelStride items and throws
/// QueryAborted when the token fires.
void RunInline(size_t n, const std::function<void(size_t)>& fn,
               const CancelToken* cancel) {
  for (size_t i = 0; i < n; ++i) {
    if (cancel != nullptr && i % kInlineCancelStride == 0) {
      ThrowIfAborted(cancel);
    }
    fn(i);
  }
}

}  // namespace

WorkerPool* WorkerPool::CurrentPool() { return t_pool; }
size_t WorkerPool::CurrentLane() { return t_lane; }

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    default_lanes_ = hw == 0 ? 1 : static_cast<size_t>(hw);
  } else {
    default_lanes_ = static_cast<size_t>(num_threads);
  }
  default_lanes_ = std::min(default_lanes_, kMaxLanes);
  // Scratch slots for every lane the pool could ever grow to: workers then
  // index scratch_ without synchronizing against later growth.
  scratch_.reserve(kMaxLanes);
  for (size_t i = 0; i < kMaxLanes; ++i) {
    scratch_.push_back(std::make_unique<LaneScratch>());
  }
  std::lock_guard<std::mutex> lock(grow_mu_);
  EnsureLanes(default_lanes_);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

WorkerPool& WorkerPool::Shared() {
  static WorkerPool pool;
  return pool;
}

void WorkerPool::EnsureLanes(size_t lanes) {
  size_t cur = lanes_.load(std::memory_order_relaxed);
  while (cur < lanes) {
    try {
      workers_.emplace_back([this, cur] { WorkerMain(cur); });
    } catch (const std::system_error&) {
      // Thread exhaustion: degrade to however many workers did start.
      break;
    }
    ++cur;
    lanes_.store(cur, std::memory_order_relaxed);
  }
}

void WorkerPool::WorkerMain(size_t lane) {
  t_pool = this;
  t_lane = lane;
  for (;;) {
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      if (shutdown_) return;
      epoch = work_epoch_;
    }
    std::shared_ptr<Job> job = PickJob();
    if (job) {
      ServeOneChunk(job.get());
      continue;
    }
    // Nothing servable at `epoch`: sleep until new work may exist. A job
    // submitted (or a lane-cap slot freed) between the scan and this wait
    // bumped the epoch, so the predicate catches it.
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock,
                  [&] { return shutdown_ || work_epoch_ != epoch; });
    if (shutdown_) return;
  }
}

std::shared_ptr<WorkerPool::Job> WorkerPool::PickJob() {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  // Best servable candidate per class, least chunks served first (ties
  // go to registry order, which the service counters immediately break).
  // Balancing on service executed — not a shared cursor — is what makes
  // picks fair under churn: a cursor reset by job retirement parked on
  // the registry head and favored whichever stream re-submitted into
  // that slot, the 2-stream skew in the PR 5 bench capture.
  std::shared_ptr<Job>* best[2] = {nullptr, nullptr};
  for (auto& job : jobs_) {
    if (job->queued.load(std::memory_order_relaxed) == 0) continue;
    if (job->active_lanes.load(std::memory_order_relaxed) >= job->cap) {
      continue;  // saturated: every cap slot is already serving
    }
    const size_t c = job->query_class == QueryClass::kInteractive ? 1 : 0;
    if (best[c] == nullptr ||
        job->served.load(std::memory_order_relaxed) <
            (*best[c])->served.load(std::memory_order_relaxed)) {
      best[c] = &job;
    }
  }
  size_t chosen;
  if (best[1] != nullptr && best[0] != nullptr) {
    // Both classes contend: interactive wins kInteractivePickWeight of
    // every kInteractivePickWeight+1 picks; the deficit counter hands
    // the remaining one to batch, so batch progresses under any
    // interactive load.
    if (batch_deficit_ >= kInteractivePickWeight) {
      batch_deficit_ = 0;
      chosen = 0;
    } else {
      ++batch_deficit_;
      chosen = 1;
    }
  } else if (best[1] != nullptr) {
    chosen = 1;
  } else if (best[0] != nullptr) {
    chosen = 0;
  } else {
    return nullptr;
  }
  // Reserve a lane slot under the job's cap. All reservations happen
  // under jobs_mu_, so only releases (decrements) race this CAS: having
  // observed active < cap above, the loop always lands.
  Job* job = best[chosen]->get();
  size_t active = job->active_lanes.load(std::memory_order_relaxed);
  while (!job->active_lanes.compare_exchange_weak(active, active + 1)) {
  }
  return *best[chosen];
}

bool WorkerPool::PopOrSteal(Job* job, size_t slot, Chunk* out) {
  const size_t slots = job->queues.size();
  {
    SlotQueue& own = job->queues[slot];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.chunks.empty()) {
      *out = own.chunks.front();
      own.chunks.pop_front();
      job->queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t d = 1; d < slots; ++d) {
    SlotQueue& victim = job->queues[(slot + d) % slots];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.chunks.empty()) {
      *out = victim.chunks.back();
      victim.chunks.pop_back();
      job->queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkerPool::ExecuteChunk(Job* job, const Chunk& c) {
  job->served.fetch_add(1, std::memory_order_relaxed);
  // Cooperative cancel/deadline poll at the chunk boundary: a fired
  // token fails the job exactly like a thrown item — first recorder
  // wins, remaining chunks drain without running, the caller rethrows —
  // so cancellation reuses the per-job isolation and cannot poison
  // co-resident jobs.
  if (job->cancel != nullptr &&
      !job->failed.load(std::memory_order_relaxed)) {
    Status live = job->cancel->Check();
    if (!live.ok()) {
      {
        std::lock_guard<std::mutex> lock(job->error_mu);
        if (!job->error) {
          job->error =
              std::make_exception_ptr(QueryAborted(std::move(live)));
        }
      }
      job->failed.store(true, std::memory_order_relaxed);
    }
  }
  if (!job->failed.load(std::memory_order_relaxed)) {
    try {
      for (size_t i = c.begin; i < c.end; ++i) {
        // Per-item early stop: after a failure elsewhere in this job,
        // don't burn the rest of an in-flight chunk on items whose
        // results will be discarded. Failure is job-local — chunks of
        // sibling jobs keep running.
        if (job->failed.load(std::memory_order_relaxed)) break;
        (*job->fn)(i);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job->error_mu);
        if (!job->error) job->error = std::current_exception();
      }
      job->failed.store(true, std::memory_order_relaxed);
    }
  }
  // Retire the chunk. The acq_rel RMW chain across finishers plus the
  // done_mu handshake below makes every lane's writes visible to the
  // caller when it observes done.
  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(job->done_mu);
    job->done = true;
    job->done_cv.notify_all();
  }
}

void WorkerPool::ServeOneChunk(Job* job) {
  Chunk c;
  const size_t slot =
      job->next_slot.fetch_add(1, std::memory_order_relaxed) %
      job->queues.size();
  if (PopOrSteal(job, slot, &c)) ExecuteChunk(job, c);
  job->active_lanes.fetch_sub(1, std::memory_order_release);
  // Releasing a cap slot on a job that still has queued chunks makes work
  // servable for a sleeping worker.
  if (job->queued.load(std::memory_order_relaxed) > 0) {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      ++work_epoch_;
    }
    wake_cv_.notify_one();
  }
}

void WorkerPool::DrainAsCaller(Job* job) {
  Chunk c;
  while (PopOrSteal(job, /*slot=*/0, &c)) ExecuteChunk(job, c);
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const TaskOptions& topts) {
  if (n == 0) return;
  // A token that fired before any work ran aborts up front — an
  // expired-in-queue query never touches a partition.
  ThrowIfAborted(topts.cancel);
  const size_t target =
      std::min(topts.max_lanes <= 0 ? default_lanes_
                                    : static_cast<size_t>(topts.max_lanes),
               kMaxLanes);
  const size_t want = std::min(target, n);
  // Nested calls (a task spawning parallel work on its own pool) run
  // inline: the outer job's lanes are already saturated.
  if (want <= 1 || t_pool != nullptr) {
    RunInline(n, fn, topts.cancel);
    return;
  }

  {
    std::lock_guard<std::mutex> grow_lock(grow_mu_);
    EnsureLanes(want);
  }
  const size_t lanes =
      std::min(want, lanes_.load(std::memory_order_relaxed));
  if (lanes <= 1) {
    RunInline(n, fn, topts.cancel);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->cap = lanes;
  job->query_class = topts.query_class;
  job->cancel = topts.cancel;
  // The submitting caller occupies one lane slot for its whole drain, so
  // the job makes progress even if every worker is serving other jobs.
  job->active_lanes.store(1, std::memory_order_relaxed);

  // Carve [0, n) into contiguous chunks and deal each slot a contiguous
  // run of them (owners pop front-to-back, so every lane walks ascending
  // indices; thieves take from the far end of a victim's run). The job is
  // not yet published, so no queue locks are needed — and a mid-dealing
  // throw (bad_alloc) just drops the unpublished job on the floor.
  const size_t chunk_len =
      std::max<size_t>(1, n / (lanes * kChunksPerLane));
  const size_t n_chunks = (n + chunk_len - 1) / chunk_len;
  const size_t per_slot = n_chunks / lanes;
  const size_t extra = n_chunks % lanes;
  size_t next_chunk = 0;
  for (size_t s = 0; s < lanes; ++s) {
    SlotQueue& q = job->queues.emplace_back();
    const size_t take = per_slot + (s < extra ? 1 : 0);
    for (size_t k = 0; k < take; ++k, ++next_chunk) {
      const size_t begin = next_chunk * chunk_len;
      q.chunks.push_back(Chunk{begin, std::min(begin + chunk_len, n)});
    }
  }
  job->queued.store(n_chunks, std::memory_order_relaxed);
  job->remaining.store(n_chunks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(job);
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.notify_all();

  // The caller serves its own job (slot 0) until the queues are dry.
  WorkerPool* prev_pool = t_pool;
  size_t prev_lane = t_lane;
  t_pool = this;
  t_lane = kCallerLane;
  DrainAsCaller(job.get());
  t_pool = prev_pool;
  t_lane = prev_lane;
  job->active_lanes.fetch_sub(1, std::memory_order_release);

  // Wait for in-flight steals: a chunk popped by a worker is retired only
  // after it runs, so done implies every chunk fully executed (or drained
  // after this job's failure).
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] { return job->done; });
  }

  // Unregister. Workers that still hold a reference see empty queues and
  // drop it; the shared_ptr keeps the Job alive under them.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i] == job) {
        jobs_.erase(jobs_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(job->error_mu);
    err = job->error;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace ps3::runtime
