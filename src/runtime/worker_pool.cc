#include "runtime/worker_pool.h"

#include <algorithm>

namespace ps3::runtime {

namespace {

/// Chunks per participating lane: enough slack for stealing to balance
/// skew, few enough that per-chunk locking stays negligible.
constexpr size_t kChunksPerLane = 4;

/// Hard ceiling on resident lanes. Growth follows the peak requested lane
/// count and never shrinks, so an errant num_threads (a garbage
/// PS3_THREADS value, a misconfigured Featurizer) must not pin thousands
/// of sleeping threads for the process lifetime.
constexpr size_t kMaxLanes = 256;

thread_local WorkerPool* t_pool = nullptr;
thread_local size_t t_lane = 0;

}  // namespace

WorkerPool* WorkerPool::CurrentPool() { return t_pool; }
size_t WorkerPool::CurrentLane() { return t_lane; }

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    default_lanes_ = hw == 0 ? 1 : static_cast<size_t>(hw);
  } else {
    default_lanes_ = static_cast<size_t>(num_threads);
  }
  default_lanes_ = std::min(default_lanes_, kMaxLanes);
  queues_.push_back(std::make_unique<LaneQueue>());
  scratch_.push_back(std::make_unique<LaneScratch>());
  std::lock_guard<std::mutex> lock(job_mu_);
  EnsureLanes(default_lanes_);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

WorkerPool& WorkerPool::Shared() {
  static WorkerPool pool;
  return pool;
}

void WorkerPool::EnsureLanes(size_t lanes) {
  while (lanes_ < lanes) {
    queues_.push_back(std::make_unique<LaneQueue>());
    scratch_.push_back(std::make_unique<LaneScratch>());
    size_t lane = lanes_;
    try {
      workers_.emplace_back([this, lane] { WorkerMain(lane); });
    } catch (const std::system_error&) {
      // Thread exhaustion: degrade to however many workers did start. The
      // lane count must match live workers exactly, or ParallelFor would
      // wait forever on a lane nobody serves.
      queues_.pop_back();
      scratch_.pop_back();
      break;
    }
    ++lanes_;
  }
}

void WorkerPool::WorkerMain(size_t lane) {
  t_pool = this;
  t_lane = lane;
  uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [&] {
        return shutdown_ || (current_job_ != nullptr && job_seq_ != seen);
      });
      if (shutdown_) return;
      seen = job_seq_;
      if (lane >= current_job_lanes_) continue;  // not a participant
      job = current_job_;
    }
    RunLane(job, lane);
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      ++job->finished_workers;
    }
    done_cv_.notify_one();
  }
}

bool WorkerPool::PopOrSteal(Job* job, size_t lane, Chunk* out) {
  {
    LaneQueue& own = *queues_[lane];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.chunks.empty()) {
      *out = own.chunks.front();
      own.chunks.pop_front();
      return true;
    }
  }
  for (size_t d = 1; d < job->lanes; ++d) {
    LaneQueue& victim = *queues_[(lane + d) % job->lanes];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.chunks.empty()) {
      *out = victim.chunks.back();
      victim.chunks.pop_back();
      return true;
    }
  }
  return false;
}

void WorkerPool::RunLane(Job* job, size_t lane) {
  Chunk c;
  while (PopOrSteal(job, lane, &c)) {
    if (job->failed.load(std::memory_order_relaxed)) continue;  // drain
    try {
      for (size_t i = c.begin; i < c.end; ++i) {
        // Per-item early stop: after a failure elsewhere, don't burn the
        // rest of an in-flight chunk on items whose results will be
        // discarded.
        if (job->failed.load(std::memory_order_relaxed)) break;
        (*job->fn)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->error_mu);
      if (!job->error) job->error = std::current_exception();
      job->failed.store(true, std::memory_order_relaxed);
    }
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             int max_lanes) {
  if (n == 0) return;
  const size_t target = std::min(
      max_lanes <= 0 ? default_lanes_ : static_cast<size_t>(max_lanes),
      kMaxLanes);
  const size_t want = std::min(target, n);
  // Nested calls (a task spawning parallel work on its own pool) run
  // inline: the outer job already owns every lane.
  if (want <= 1 || t_pool != nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mu_);
  EnsureLanes(want);
  const size_t lanes = std::min(want, lanes_);
  if (lanes <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.lanes = lanes;

  // Carve [0, n) into contiguous chunks and deal each lane a contiguous
  // run of them (owners pop front-to-back, so every lane walks ascending
  // indices; thieves take from the far end of a victim's run).
  const size_t chunk_len =
      std::max<size_t>(1, n / (lanes * kChunksPerLane));
  const size_t n_chunks = (n + chunk_len - 1) / chunk_len;
  const size_t per_lane = n_chunks / lanes;
  const size_t extra = n_chunks % lanes;
  size_t next_chunk = 0;
  try {
    for (size_t l = 0; l < lanes; ++l) {
      const size_t take = per_lane + (l < extra ? 1 : 0);
      LaneQueue& q = *queues_[l];
      for (size_t k = 0; k < take; ++k, ++next_chunk) {
        const size_t begin = next_chunk * chunk_len;
        q.chunks.push_back(Chunk{begin, std::min(begin + chunk_len, n)});
      }
    }
  } catch (...) {
    // A mid-dealing throw (bad_alloc) must not leave this job's chunks
    // behind: the next published job would execute them with its own fn
    // and the wrong index range. No job is published yet and job_mu_ is
    // held, so no lane mutex is needed.
    for (size_t l = 0; l < lanes; ++l) queues_[l]->chunks.clear();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    current_job_ = &job;
    current_job_lanes_ = lanes;
    ++job_seq_;
  }
  wake_cv_.notify_all();

  // The caller is lane 0.
  WorkerPool* prev_pool = t_pool;
  size_t prev_lane = t_lane;
  t_pool = this;
  t_lane = 0;
  RunLane(&job, 0);
  t_pool = prev_pool;
  t_lane = prev_lane;

  // Wait for every participating worker to finish (each drains to empty
  // before reporting, so all chunks — including in-flight steals — are
  // complete once the count reaches lanes - 1).
  {
    std::unique_lock<std::mutex> lock(wake_mu_);
    done_cv_.wait(lock, [&] { return job.finished_workers == lanes - 1; });
    current_job_ = nullptr;
    current_job_lanes_ = 0;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace ps3::runtime
