// Concurrent multi-query submission onto the shared resident WorkerPool.
//
// QueryScheduler is the admission layer for the paper's query-stream
// setting: many exact aggregate queries arrive at once, and instead of
// serializing whole-query scans, each Submit() becomes a task on a small
// set of resident driver threads. A driver executes the query's partition
// fan-out as its own WorkerPool job, so the chunks of several in-flight
// queries interleave on the shared lanes (round-robin, capped per query by
// ExecOptions::num_threads) — throughput comes from admitting concurrent
// work onto shared execution resources rather than from one query owning
// every lane.
//
// Admission is multi-tenant: every Submit* has an overload taking
// SubmitOptions{query_class, deadline, cancel}. Interactive-class queries
// jump the driver queue ahead of batch work and preempt batch jobs at
// chunk granularity on the pool (weighted — batch still progresses); a
// deadline is armed at admission (queue wait counts against it), and a
// cancelled or expired query resolves its future with QueryAborted
// carrying Status::Cancelled / Status::DeadlineExceeded — its cache pins
// are released, its cold loads unwound, and co-resident queries are
// untouched. Classless call sites default to batch and behave exactly as
// before.
//
// Determinism contract: each query's per-partition reduction is ordered
// (index-addressed slots, ascending row order within a partition), so the
// answer a future resolves to is bit-identical to running the same query
// serially — for any driver count, lane count, steal schedule, query
// class mix, or set of concurrently admitted queries (class and deadline
// affect when chunks run, never merge order or results). Failure is per
// query: a task that throws fails only its own future; sibling queries
// and the resident lanes are unaffected.
//
// Tables are borrowed, not owned: a table passed to Submit must stay alive
// until the returned future is ready (or the scheduler is destroyed,
// which drains all admitted work).
#ifndef PS3_RUNTIME_QUERY_SCHEDULER_H_
#define PS3_RUNTIME_QUERY_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/query_control.h"
#include "query/evaluator.h"
#include "runtime/worker_pool.h"
#include "storage/partition_source.h"
#include "storage/sharded_table.h"

namespace ps3::core {
class PartitionPicker;
}  // namespace ps3::core

namespace ps3::runtime {

/// Options for the approximate query class (paper §4: a learned picker
/// prunes the partition set before any byte moves).
struct ApproxOptions {
  /// Fraction of partitions the picker may read, in (0, 1]. The picker
  /// budget is ceil(fraction * num_partitions), at least 1. Out of range
  /// (or NaN) poisons the query's future with std::invalid_argument.
  double sampling_fraction = 0.1;
  /// Picker RNG seed. Determinism contract: same picker + seed +
  /// fraction give a bit-identical ApproxAnswer for any shard count,
  /// cache budget, ExecPolicy, thread count, or concurrent load.
  uint64_t seed = 1;
};

/// An approximate answer plus the metadata that keeps it honest.
struct ApproxAnswer {
  query::QueryAnswer value;
  /// Per-(group, aggregate) standard-error estimate, mirroring `value`
  /// (HT variance for SUM/COUNT, delta method for AVG, 0 for MIN/MAX and
  /// for exactly-read strata — see query::CombineWeightedWithError).
  query::QueryAnswer error_estimate;
  /// Partitions the picker selected (== partitions the scan acquired).
  size_t partitions_scanned = 0;
  size_t partitions_total = 0;
  /// Encoded on-disk bytes a fully-cold scan of the picked
  /// (partition, column) set moves — the planned footprint, from the
  /// spill manifest, so it is deterministic under any cache state.
  /// Resident sources report 0.
  uint64_t bytes_moved = 0;
};

/// What an exact submission does when the source reports permanently
/// lost partitions (PartitionSource::UnreachablePartitions).
enum class DegradedMode : uint8_t {
  /// Fail structurally: the future rethrows QueryFailed carrying
  /// Status::Unavailable naming the lost partitions. The default — an
  /// exact answer that silently isn't exact is never acceptable without
  /// an explicit opt-in.
  kFail = 0,
  /// Degrade gracefully (SubmitDegradable only): re-plan the scan over
  /// the reachable set and resolve to an ApproxAnswer whose values are
  /// HT-reweighted at total/|reachable| and whose error surface reflects
  /// the effective sampling fraction — the paper's approximate machinery
  /// as the availability story.
  kApproximate = 1,
};

/// Per-query admission options for the multi-tenant Submit* overloads.
struct SubmitOptions {
  /// kInteractive jumps the driver queue ahead of batch tasks and wins
  /// the weighted chunk-granularity picks on the pool; kBatch (default)
  /// matches the classless overloads exactly.
  QueryClass query_class = QueryClass::kBatch;
  /// Relative deadline, armed at *admission* so queue wait counts
  /// against it. 0 (default) = none; <= 0 is already expired (the query
  /// fast-fails with DeadlineExceeded before touching a partition). On
  /// expiry mid-flight the future resolves with QueryAborted carrying
  /// Status::DeadlineExceeded at the next chunk boundary.
  std::chrono::microseconds deadline{0};
  /// External cancellation handle: call Cancel() from any thread and the
  /// query aborts cooperatively (future resolves with QueryAborted
  /// carrying Status::Cancelled). Optional; one is created internally
  /// when a deadline is set without a token. A deadline is armed on this
  /// token at admission, so sharing one token across submissions shares
  /// the latest deadline too — share tokens only to cancel a group
  /// together.
  std::shared_ptr<CancelToken> cancel;
  /// Lost-partition policy for SubmitDegradable. Plain Submit is
  /// mode-blind: its future is a QueryAnswer, which cannot carry a
  /// degraded result, so lost partitions always surface as QueryFailed
  /// naming them — resubmit through SubmitDegradable to opt in.
  DegradedMode degraded_mode = DegradedMode::kFail;
};

class QueryScheduler {
 public:
  struct Options {
    /// Resident driver threads (concurrent in-flight queries). <= 0 picks
    /// min(4, hardware concurrency). Each driver serves the job it
    /// submitted, so drivers make progress even on a saturated pool.
    int num_drivers = 0;
    /// Pool queries execute on; nullptr = the process-wide shared pool.
    WorkerPool* pool = nullptr;
  };

  /// Default options: shared pool, min(4, hardware) drivers.
  QueryScheduler();
  explicit QueryScheduler(Options options);
  /// Drains: already-admitted tasks run to completion (their futures all
  /// become ready), then the drivers join. No task is dropped.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  WorkerPool& pool() const { return *pool_; }
  size_t num_drivers() const { return drivers_.size(); }
  /// Tasks admitted but not yet finished (queued + executing).
  size_t pending() const;

  /// Admits an exact aggregate query over a sharded table. The future
  /// resolves to the finalized answer (every partition, weight 1),
  /// bit-identical to serial evaluation; it rethrows if evaluation threw.
  /// `opts.pool` is overridden with the scheduler's pool;
  /// `opts.num_threads` caps this query's lane share while other queries
  /// are in flight.
  std::future<query::QueryAnswer> Submit(query::Query query,
                                         const storage::ShardedTable& table,
                                         query::ExecOptions opts = {});
  /// Same, over a flat partitioned table.
  std::future<query::QueryAnswer> Submit(
      query::Query query, const storage::PartitionedTable& table,
      query::ExecOptions opts = {});
  /// Same, over an abstract PartitionSource (resident adapter or the io
  /// layer's cold/cached stores). The source — and whatever it borrows
  /// (store, prefetch pipeline) — must stay alive until the future is
  /// ready. A cold-load failure (IO error, checksum mismatch) poisons
  /// only this query's future.
  std::future<query::QueryAnswer> Submit(query::Query query,
                                         const storage::PartitionSource& source,
                                         query::ExecOptions opts = {});

  /// Admits an *approximate* aggregate query: `picker` chooses a weighted
  /// partition subset (budget = ceil(sampling_fraction * partitions)),
  /// and the scan runs over a storage::PickedSource view of `source`, so
  /// only picked partitions are ever acquired and prefetch read-ahead
  /// follows the picked shard plan. The future resolves to the
  /// Horvitz–Thompson reweighted answer with per-group error estimates
  /// and the scan's planned byte footprint. The picker runs on the driver
  /// thread against per-partition statistics only (it never touches
  /// partition data); `picker`, `source`, and whatever they borrow must
  /// stay alive until the future is ready. If the source reports lost
  /// partitions and the pick overlaps them, the pick is deterministically
  /// re-drawn around the lost set at unchanged budget (derived seeds,
  /// first lost-free selection wins; pickers that can never avoid the
  /// set fall back to dropping lost choices and rescaling the survivors'
  /// weights).
  std::future<ApproxAnswer> SubmitApproximate(
      query::Query query, const storage::PartitionSource& source,
      const core::PartitionPicker& picker, ApproxOptions approx,
      query::ExecOptions opts = {});

  /// Admits a query but resolves to the raw per-partition answers (global
  /// partition order) — the form the trainer and pickers consume.
  std::future<std::vector<query::PartitionAnswer>> SubmitPartials(
      query::Query query, const storage::PartitionedTable& table,
      query::ExecOptions opts = {});
  std::future<std::vector<query::PartitionAnswer>> SubmitPartials(
      query::Query query, const storage::ShardedTable& table,
      query::ExecOptions opts = {});
  std::future<std::vector<query::PartitionAnswer>> SubmitPartials(
      query::Query query, const storage::PartitionSource& source,
      query::ExecOptions opts = {});

  /// Multi-tenant admission: same contracts as the overloads above, plus
  /// SubmitOptions semantics — class-priority queueing and lane picks, a
  /// deadline armed at admission, cooperative cancellation. An aborted
  /// query's future rethrows QueryAborted; survivors stay bit-identical
  /// to serial evaluation.
  std::future<query::QueryAnswer> Submit(query::Query query,
                                         const storage::ShardedTable& table,
                                         SubmitOptions submit,
                                         query::ExecOptions opts = {});
  std::future<query::QueryAnswer> Submit(
      query::Query query, const storage::PartitionedTable& table,
      SubmitOptions submit, query::ExecOptions opts = {});
  std::future<query::QueryAnswer> Submit(query::Query query,
                                         const storage::PartitionSource& source,
                                         SubmitOptions submit,
                                         query::ExecOptions opts = {});
  std::future<ApproxAnswer> SubmitApproximate(
      query::Query query, const storage::PartitionSource& source,
      const core::PartitionPicker& picker, ApproxOptions approx,
      SubmitOptions submit, query::ExecOptions opts = {});

  /// Degradation-aware exact submission: the graceful-degradation entry
  /// point. With every partition reachable, resolves to an ApproxAnswer
  /// whose value is bit-identical to Submit's exact answer (all-weight-1
  /// combine) with a zero error surface and partitions_scanned == total.
  /// With lost partitions, the behavior follows submit.degraded_mode:
  /// kFail rethrows QueryFailed carrying Status::Unavailable naming the
  /// lost partitions; kApproximate scans the reachable complement
  /// through a storage::PickedSource (lost partitions are never
  /// acquired), HT-reweights at total/|reachable|, and reports the error
  /// surface of the effective sampling fraction plus the bytes the
  /// reachable scan plans to move. Deterministic: the same lost set
  /// yields a bit-identical ApproxAnswer for any shard count, policy,
  /// thread count, or concurrent load.
  std::future<ApproxAnswer> SubmitDegradable(
      query::Query query, const storage::PartitionSource& source,
      SubmitOptions submit = {}, query::ExecOptions opts = {});

  std::future<std::vector<query::PartitionAnswer>> SubmitPartials(
      query::Query query, const storage::PartitionedTable& table,
      SubmitOptions submit, query::ExecOptions opts = {});
  std::future<std::vector<query::PartitionAnswer>> SubmitPartials(
      query::Query query, const storage::ShardedTable& table,
      SubmitOptions submit, query::ExecOptions opts = {});
  std::future<std::vector<query::PartitionAnswer>> SubmitPartials(
      query::Query query, const storage::PartitionSource& source,
      SubmitOptions submit, query::ExecOptions opts = {});

  /// Generic admission: runs `fn` on a driver thread and resolves the
  /// future with its result (or exception). Parallel passes inside `fn`
  /// (stats builds, featurization, labeling scans) are admitted to the
  /// pool as that task's own jobs, concurrent with other tasks'.
  /// Interactive-class tasks are dequeued ahead of batch tasks (and of
  /// staged prefetch work, which defers as batch); within a class, FIFO.
  template <typename F>
  auto Defer(F fn, QueryClass query_class = QueryClass::kBatch)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task] { (*task)(); }, query_class);
    return fut;
  }

 private:
  /// The evaluation options + token a Submit overload hands its deferred
  /// task: pool pinned, class stamped, deadline armed (at admission).
  /// The token rides in the task's capture so an externally held
  /// CancelToken stays alive until the future resolves.
  struct Admission {
    query::ExecOptions opts;
    std::shared_ptr<CancelToken> token;

    /// Pre-execution gate, run first on the driver: a query cancelled or
    /// expired while queued fast-fails without touching a partition.
    void ThrowIfDead() const { ThrowIfAborted(token.get()); }
  };
  Admission Admit(const SubmitOptions& submit, query::ExecOptions opts) const;

  void Enqueue(std::function<void()> task,
               QueryClass query_class = QueryClass::kBatch);
  void DriverMain();

  WorkerPool* pool_;
  std::vector<std::thread> drivers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Two-level priority queue: queues_[1] (interactive) drains before
  /// queues_[0] (batch); FIFO within each. Guarded by mu_.
  std::deque<std::function<void()>> queues_[2];
  size_t executing_ = 0;  ///< guarded by mu_
  bool stop_ = false;     ///< guarded by mu_
};

}  // namespace ps3::runtime

#endif  // PS3_RUNTIME_QUERY_SCHEDULER_H_
