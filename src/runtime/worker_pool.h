// Persistent work-stealing pool for per-partition parallelism (scans,
// stats builds, labeling, featurization).
//
// Unlike the fork-per-call pool it replaces, workers are resident: threads
// are spawned once (growing lazily to the peak requested lane count) and
// sleep between ParallelFor calls. Each lane owns a deque of index chunks;
// a lane pops from the front of its own deque and steals from the back of
// another lane's when it runs dry, so skewed per-item costs balance without
// a single contended counter. Results are written to caller-indexed slots
// by the supplied function, so every reduction stays ordered and
// deterministic regardless of lane count or steal schedule.
//
// The pool also owns per-lane scratch storage (LocalScratch<T>). Because
// workers are resident, scratch obtained inside a task survives across
// ParallelFor calls — the property that makes multi-megabyte query scratch
// (dense group-id tables, bitmap stacks) amortize across a whole query
// stream instead of being torn down with each forked worker.
#ifndef PS3_RUNTIME_WORKER_POOL_H_
#define PS3_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ps3::runtime {

class WorkerPool {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency. Worker threads
  /// (num_threads - 1; the caller is lane 0) are spawned on construction
  /// and stay resident until destruction.
  explicit WorkerPool(int num_threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Lanes currently resident (caller lane + worker threads).
  size_t num_lanes() const { return lanes_; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. The
  /// calling thread participates as lane 0. `max_lanes` caps parallelism
  /// and follows the ExecOptions::num_threads convention: <= 0 = the
  /// pool's default lane count, 1 = fully inline on the caller. The pool
  /// grows (spawning resident workers) if `max_lanes` exceeds the current
  /// lane count, up to a hard ceiling of 256 lanes — growth follows the
  /// peak request and never shrinks, so the ceiling bounds what an errant
  /// value can pin. Nested calls from inside a task run inline (no deadlock,
  /// no thread explosion). Exceptions thrown by `fn` are rethrown on the
  /// caller; remaining chunks are skipped best-effort. Concurrent
  /// top-level callers are serialized (one job at a time).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   int max_lanes = 0);

  /// Process-wide resident pool, sized to the hardware concurrency (and
  /// growing to the peak explicitly requested lane count).
  static WorkerPool& Shared();

  /// Per-lane scratch of arbitrary type, default-constructed on first use
  /// and retained for the pool's lifetime. Called from inside a task it
  /// returns the executing lane's slot (stable across ParallelFor calls —
  /// this is what makes scratch reuse real on worker threads). Called from
  /// a thread that is not currently executing a task of this pool, it
  /// returns a thread_local fallback, which equally persists for the
  /// calling thread's lifetime. Never returns storage shared between two
  /// concurrently running lanes.
  template <typename T>
  T& LocalScratch() {
    if (CurrentPool() == this) {
      LaneScratch& ls = *scratch_[CurrentLane()];
      const void* key = TypeKey<T>();
      for (const ScratchEntry& e : ls.entries) {
        if (e.key == key) return *static_cast<T*>(e.ptr);
      }
      T* p = new T();
      ls.entries.push_back(ScratchEntry{key, p, &DestroyT<T>});
      return *p;
    }
    static thread_local T fallback;
    return fallback;
  }

 private:
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;
  };

  /// One lane's chunk deque. The owning lane pops from the front; thieves
  /// pop from the back, so contiguous index runs stay with their owner.
  struct LaneQueue {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t lanes = 0;  ///< participating lanes: [0, lanes)
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    size_t finished_workers = 0;  ///< guarded by wake_mu_
  };

  struct ScratchEntry {
    const void* key;
    void* ptr;
    void (*destroy)(void*);
  };
  struct LaneScratch {
    std::vector<ScratchEntry> entries;
    ~LaneScratch() {
      for (const ScratchEntry& e : entries) e.destroy(e.ptr);
    }
  };

  template <typename T>
  static void DestroyT(void* p) {
    delete static_cast<T*>(p);
  }
  template <typename T>
  static const void* TypeKey() {
    static const char key = 0;
    return &key;
  }

  /// Pool whose task the calling thread is currently executing (nullptr
  /// outside tasks) and the executing lane id.
  static WorkerPool* CurrentPool();
  static size_t CurrentLane();

  /// Grows to `lanes` total lanes. Caller must hold job_mu_ with no job
  /// published (workers only touch queues_/scratch_ while a job is live).
  void EnsureLanes(size_t lanes);
  void WorkerMain(size_t lane);
  /// Drains chunks as `lane`: own queue front first, then steals.
  void RunLane(Job* job, size_t lane);
  bool PopOrSteal(Job* job, size_t lane, Chunk* out);

  size_t default_lanes_;
  size_t lanes_ = 1;  // lane 0 = caller
  std::vector<std::unique_ptr<LaneQueue>> queues_;
  std::vector<std::unique_ptr<LaneScratch>> scratch_;
  std::vector<std::thread> workers_;

  std::mutex job_mu_;  ///< serializes ParallelFor callers end-to-end
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  Job* current_job_ = nullptr;    ///< guarded by wake_mu_
  size_t current_job_lanes_ = 0;  ///< guarded by wake_mu_
  uint64_t job_seq_ = 0;          ///< guarded by wake_mu_
  bool shutdown_ = false;         ///< guarded by wake_mu_
};

}  // namespace ps3::runtime

#endif  // PS3_RUNTIME_WORKER_POOL_H_
