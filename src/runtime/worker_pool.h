// Persistent work-stealing pool for per-partition parallelism (scans,
// stats builds, labeling, featurization) shared by concurrent queries.
//
// Unlike the fork-per-call pool it replaces, workers are resident: threads
// are spawned once (growing lazily to the peak requested lane count) and
// sleep between jobs. Each ParallelFor call materializes a *job*: its index
// range is carved into contiguous chunks dealt across per-slot deques owned
// by that job. A lane serving a job pops from the front of a slot's deque
// and steals from the back of another slot's when it runs dry, so skewed
// per-item costs balance without a single contended counter.
//
// Multiple jobs are in flight at once. Concurrent top-level ParallelFor
// callers are admitted side by side instead of serialized: resident workers
// pick one chunk per pick from the active-job registry, and each job caps
// how many lanes may serve it simultaneously (`max_lanes`, the
// ExecOptions::num_threads convention), so one heavy query cannot
// monopolize the pool while others starve. The submitting thread always
// serves its own job until that job's queues are dry, so a job completes
// even if every worker is busy elsewhere.
//
// Picks are class-aware and service-balanced. Each job carries a
// QueryClass: when both classes have servable work, interactive jobs win
// kInteractivePickWeight of every kInteractivePickWeight+1 picks (a
// weighted-deficit counter guarantees the remaining pick goes to batch,
// so batch always progresses — preemption at chunk granularity, never
// starvation). Within a class the least-served job (fewest chunks
// executed) is picked, which keeps service even across same-class jobs
// regardless of registration order or churn — the earlier shared
// round-robin cursor was reset on every job retirement and parked on the
// registry head, systematically favoring whichever job sat there under
// submit/finish churn, and it advanced past jobs whose reservation found
// a momentarily-empty deque, double-penalizing them a full scan cycle.
//
// Jobs may also carry a CancelToken. The token is polled at every chunk
// boundary (and per item once a job has failed): when it fires, the job
// is failed with QueryAborted carrying the token's Status, its remaining
// chunks drain without running, and the caller rethrows — exactly the
// per-job failure isolation path, so cancellation never poisons
// co-resident jobs.
//
// Determinism: results are written to caller-indexed slots by the supplied
// function, so every reduction stays ordered and bit-identical to serial
// execution regardless of lane count, steal schedule, or what other jobs
// run concurrently. Failure is per job: an exception thrown by `fn` is
// recorded on that job alone, its remaining chunks drain without running,
// and the exception is rethrown on that job's caller — sibling jobs and
// the resident lanes are unaffected.
//
// The pool also owns per-lane scratch storage (LocalScratch<T>). Because
// workers are resident, scratch obtained inside a task survives across
// jobs — the property that makes multi-megabyte query scratch (dense
// group-id tables, bitmap stacks) amortize across a whole query stream
// instead of being torn down with each forked worker.
#ifndef PS3_RUNTIME_WORKER_POOL_H_
#define PS3_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/query_control.h"

namespace ps3::runtime {

class WorkerPool {
 public:
  /// Per-job scheduling options for ParallelFor.
  struct TaskOptions {
    /// Lane cap, ExecOptions::num_threads convention: <= 0 = pool
    /// default, 1 = fully inline on the caller.
    int max_lanes = 0;
    /// Admission class: interactive jobs preempt batch at chunk
    /// granularity (weighted, batch still progresses). Affects only when
    /// chunks run, never results.
    QueryClass query_class = QueryClass::kBatch;
    /// Cooperative cancel/deadline token, polled at chunk boundaries;
    /// nullable. Must outlive the ParallelFor call. When it fires the
    /// call throws QueryAborted on the caller; sibling jobs are
    /// unaffected.
    const CancelToken* cancel = nullptr;
  };
  /// `num_threads` <= 0 selects the hardware concurrency. Worker threads
  /// are spawned on construction and stay resident until destruction.
  explicit WorkerPool(int num_threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Lanes currently resident (caller lane + worker threads).
  size_t num_lanes() const { return lanes_.load(std::memory_order_relaxed); }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. The
  /// calling thread participates as a lane of its own job. `max_lanes`
  /// caps how many lanes (caller included) may serve this job at once and
  /// follows the ExecOptions::num_threads convention: <= 0 = the pool's
  /// default lane count, 1 = fully inline on the caller. The pool grows
  /// (spawning resident workers) if `max_lanes` exceeds the current lane
  /// count, up to a hard ceiling of 256 lanes — growth follows the peak
  /// request and never shrinks, so the ceiling bounds what an errant value
  /// can pin. Nested calls from inside a task run inline (no deadlock, no
  /// thread explosion). Exceptions thrown by `fn` are rethrown on the
  /// caller; the job's remaining chunks are skipped best-effort and
  /// concurrent jobs are unaffected. Concurrent top-level callers run side
  /// by side: each call is an independent job whose chunks interleave with
  /// other jobs' on the shared lanes (round-robin), and whose results and
  /// failure state are isolated to that call.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   int max_lanes = 0) {
    TaskOptions topts;
    topts.max_lanes = max_lanes;
    ParallelFor(n, fn, topts);
  }

  /// Same, with full scheduling options (class-weighted picks,
  /// cooperative cancellation). A fired token aborts the job at the next
  /// chunk boundary and rethrows as QueryAborted on the caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const TaskOptions& topts);

  /// Process-wide resident pool, sized to the hardware concurrency (and
  /// growing to the peak explicitly requested lane count).
  static WorkerPool& Shared();

  /// Per-lane scratch of arbitrary type, default-constructed on first use
  /// and retained for the pool's lifetime. Called from a resident worker
  /// lane it returns the executing lane's slot (stable across jobs — this
  /// is what makes scratch reuse real on worker threads). Called from any
  /// other thread — one not executing a task of this pool, or a
  /// ParallelFor caller serving its own job — it returns a thread_local
  /// fallback, which equally persists for the calling thread's lifetime
  /// (a resident submitter thread amortizes its scratch the same way a
  /// worker does). Never returns storage shared between two concurrently
  /// running lanes: worker lanes execute one chunk at a time, and the
  /// fallback is private to its thread.
  template <typename T>
  T& LocalScratch() {
    if (CurrentPool() == this && CurrentLane() != kCallerLane) {
      LaneScratch& ls = *scratch_[CurrentLane()];
      const void* key = TypeKey<T>();
      for (const ScratchEntry& e : ls.entries) {
        if (e.key == key) return *static_cast<T*>(e.ptr);
      }
      T* p = new T();
      ls.entries.push_back(ScratchEntry{key, p, &DestroyT<T>});
      return *p;
    }
    static thread_local T fallback;
    return fallback;
  }

 private:
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;
  };

  /// One slot's chunk deque within a job. The serving lane pops from the
  /// front of its slot; thieves pop from the back of another slot's, so
  /// contiguous index runs stay with one lane.
  struct SlotQueue {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  /// One ParallelFor call. Owned via shared_ptr: the registry and every
  /// lane currently serving the job hold references, so a worker finishing
  /// its last chunk after the caller returned never touches freed memory.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    std::deque<SlotQueue> queues;  ///< fixed before publication
    size_t cap = 0;  ///< max lanes serving concurrently (incl. caller)
    QueryClass query_class = QueryClass::kBatch;
    /// Cooperative abort flag; polled at chunk boundaries. Borrowed from
    /// the caller, valid for the job's lifetime (the caller blocks in
    /// ParallelFor until every chunk retires).
    const CancelToken* cancel = nullptr;

    std::atomic<size_t> queued{0};     ///< chunks still sitting in queues
    std::atomic<size_t> remaining{0};  ///< chunks not yet executed/drained
    std::atomic<size_t> active_lanes{0};
    std::atomic<size_t> next_slot{0};  ///< slot handed to a joining worker
    /// Chunks executed so far — the service counter least-served-first
    /// picking balances on.
    std::atomic<uint64_t> served{0};

    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::exception_ptr error;

    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;  ///< guarded by done_mu
  };

  struct ScratchEntry {
    const void* key;
    void* ptr;
    void (*destroy)(void*);
  };
  struct LaneScratch {
    std::vector<ScratchEntry> entries;
    ~LaneScratch() {
      for (const ScratchEntry& e : entries) e.destroy(e.ptr);
    }
  };

  template <typename T>
  static void DestroyT(void* p) {
    delete static_cast<T*>(p);
  }
  template <typename T>
  static const void* TypeKey() {
    static const char key = 0;
    return &key;
  }

  /// Lane id a ParallelFor caller runs under while serving its own job.
  /// Distinct from every worker lane so LocalScratch can route concurrent
  /// submitter threads to private (thread_local) storage instead of a
  /// shared slot.
  static constexpr size_t kCallerLane = ~size_t{0};

  /// Pool whose task the calling thread is currently executing (nullptr
  /// outside tasks) and the executing lane id.
  static WorkerPool* CurrentPool();
  static size_t CurrentLane();

  /// Grows to `lanes` total lanes. Caller must hold grow_mu_.
  void EnsureLanes(size_t lanes);
  void WorkerMain(size_t lane);
  /// Picks a job with queued chunks and spare lane capacity — class
  /// weighting between interactive and batch, least-served-first within a
  /// class — and reserves a lane on it. Returns nullptr when nothing is
  /// servable.
  std::shared_ptr<Job> PickJob();
  /// Pops (or steals) and executes at most one chunk, then releases the
  /// reserved lane.
  void ServeOneChunk(Job* job);
  /// Drains `job` as slot `slot` until its queues are dry (submitting
  /// caller's loop; the caller's lane reservation is held throughout).
  void DrainAsCaller(Job* job);
  bool PopOrSteal(Job* job, size_t slot, Chunk* out);
  /// Runs one chunk (or discards it after a failure) and retires it from
  /// the job's accounting, signalling completion on the last chunk.
  void ExecuteChunk(Job* job, const Chunk& c);

  size_t default_lanes_;
  std::atomic<size_t> lanes_{1};  // lane 0 = reserved (callers are private)
  /// Preallocated to the lane ceiling so workers index it without
  /// synchronizing against growth.
  std::vector<std::unique_ptr<LaneScratch>> scratch_;
  std::vector<std::thread> workers_;
  std::mutex grow_mu_;  ///< serializes EnsureLanes callers

  std::mutex jobs_mu_;
  std::vector<std::shared_ptr<Job>> jobs_;  ///< active-job registry
  /// Interactive picks made since batch last won while both classes had
  /// servable work; at kInteractivePickWeight the next contested pick
  /// goes to batch. Guarded by jobs_mu_.
  size_t batch_deficit_ = 0;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  uint64_t work_epoch_ = 0;  ///< bumped when servable work may exist
  bool shutdown_ = false;    ///< guarded by wake_mu_
};

}  // namespace ps3::runtime

#endif  // PS3_RUNTIME_WORKER_POOL_H_
