// Runtime SIMD capability dispatch for the explicit kernels in the query
// engine. Kernels are compiled with per-function target attributes, so the
// binary runs on any x86-64 (or non-x86) host and upgrades itself at
// runtime when AVX2 is present. The scalar kernels remain the bit-exactness
// reference; SIMD variants must produce identical results.
//
// Grouped-aggregation kernels: the engine's determinism contract pins the
// *order of floating-point additions* per group (ascending row order,
// identical to the scalar interpreter), so SUM itself cannot be lane-
// parallelized without changing results. What can: everything feeding the
// accumulate loop. The kernels below gather the selected rows' group
// codes and expression values with AVX2 gathers (DenseGroupIds*,
// GatherDoubles*), leaving a tight scalar in-order accumulate; COUNT is
// integer-valued in doubles (exact at any order) and MIN/MAX are order-
// insensitive for the engine's finite, NaN-free data, so those reduce
// fully in lanes (MinGather*/MaxGather*).
#ifndef PS3_RUNTIME_SIMD_H_
#define PS3_RUNTIME_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ps3::runtime {

/// Kernel selection for the vectorized execution policy.
enum class SimdLevel {
  kAuto,  ///< use AVX2 when the CPU supports it
  kNone,  ///< force the scalar word-packing kernels
  kAvx2,  ///< force AVX2 (caller must know the CPU supports it)
};

/// True when this process can execute AVX2 instructions.
bool Avx2Available();

// ---------------------------------------------------------------------
// Scalar reference kernels (always available, any architecture). The
// AVX2 variants must match these bit-for-bit on the engine's data.

/// ids[k] = sum_g codes[g][rows[k]] * strides[g] — the dense group-id of
/// each selected row. Products and sums must fit uint32 (the engine caps
/// the dense id space at 2^20).
inline void DenseGroupIdsScalar(const int32_t* const* codes,
                                const uint32_t* strides, size_t n_group_cols,
                                const uint32_t* rows, size_t n,
                                uint32_t* ids) {
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = rows[k];
    uint32_t id = 0;
    for (size_t g = 0; g < n_group_cols; ++g) {
      id += static_cast<uint32_t>(codes[g][r]) * strides[g];
    }
    ids[k] = id;
  }
}

/// out[k] = values[rows[k]] — compacts the selected rows' values so the
/// ordered accumulate loop reads them contiguously.
inline void GatherDoublesScalar(const double* values, const uint32_t* rows,
                                size_t n, double* out) {
  for (size_t k = 0; k < n; ++k) out[k] = values[rows[k]];
}

/// Minimum of values[rows[k]] over k; n must be >= 1. Inputs must be
/// NaN-free (the engine's columns are); ties between +0.0 and -0.0 may
/// resolve to either representation.
inline double MinGatherScalar(const double* values, const uint32_t* rows,
                              size_t n) {
  double m = values[rows[0]];
  for (size_t k = 1; k < n; ++k) {
    const double v = values[rows[k]];
    if (v < m) m = v;
  }
  return m;
}

/// Maximum counterpart of MinGatherScalar.
inline double MaxGatherScalar(const double* values, const uint32_t* rows,
                              size_t n) {
  double m = values[rows[0]];
  for (size_t k = 1; k < n; ++k) {
    const double v = values[rows[k]];
    if (v > m) m = v;
  }
  return m;
}

// ---------------------------------------------------------------------
// Segment-decode kernels (io/partition_file's compressed segments).
//
// Bit-packing layout: n values of `width` bits (1..32) are packed
// LSB-first into a little-endian stream of 64-bit words; the payload is
// padded to a whole number of words. Value i occupies bits
// [i*width, (i+1)*width) of the stream. The scalar kernels are the
// bit-exactness reference; the AVX2 unpack must produce identical
// output for identical input.

/// Packed payload size in bytes for n values at `width` bits: whole
/// 64-bit words, zero-padded.
inline size_t BitPackedBytes(size_t n, unsigned width) {
  return ((n * width + 63) / 64) * 8;
}

/// Bits needed to represent v (>= 1 so a zero-valued segment still has a
/// well-formed width).
inline unsigned BitWidthForU32(uint32_t v) {
  unsigned w = 1;
  while (w < 32 && (v >> w) != 0) ++w;
  return w;
}

/// Zigzag map for signed deltas: 0,-1,1,-2,2... -> 0,1,2,3,4..., so
/// descending runs pack as tightly as ascending ones.
inline uint32_t ZigzagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^
         static_cast<uint32_t>(v >> 31);
}

inline uint32_t ZigzagDecode32(uint32_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

/// Packs n values at `width` bits into `out`, which must hold
/// BitPackedBytes(n, width) zero-initialized bytes. Values must fit
/// `width` bits. Write-path only; no SIMD variant (spill is
/// once-per-table, decode is once-per-cold-scan).
inline void BitPackScalar(const uint32_t* values, size_t n, unsigned width,
                          uint8_t* out);

/// Unpacks n values of `width` bits (1..32) from `packed`, which holds
/// BitPackedBytes(n, width) bytes. Reads whole 64-bit words within the
/// padded payload only — no slack needed.
inline void BitUnpackScalar(const uint8_t* packed, size_t n, unsigned width,
                            uint32_t* out);

/// Frame-of-reference + delta reconstruction: out[i] =
/// base + sum_{j<=i} zigzag_decode(zz[j]) in wrapping uint32 arithmetic,
/// reinterpreted as int32. The encoder stores base = first value and
/// zz[0] = 0, but any (base, deltas) pair decodes deterministically.
inline void ForDeltaReconstructScalar(const uint32_t* zz, size_t n,
                                      uint32_t base, int32_t* out) {
  uint32_t v = base;
  for (size_t i = 0; i < n; ++i) {
    v += ZigzagDecode32(zz[i]);
    out[i] = static_cast<int32_t>(v);
  }
}

inline void BitPackScalar(const uint32_t* values, size_t n, unsigned width,
                          uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const size_t bit = i * width;
    const size_t byte = bit >> 3;
    const unsigned off = static_cast<unsigned>(bit & 7);
    // Read-modify-write exactly the bytes this value spans (<= 5: 32
    // bits plus 7 bits of misalignment); the value's last bit is inside
    // the padded payload, so the span is too.
    const size_t nbytes = (off + width + 7) >> 3;
    uint64_t word = 0;
    __builtin_memcpy(&word, out + byte, nbytes);
    word |= static_cast<uint64_t>(values[i]) << off;
    __builtin_memcpy(out + byte, &word, nbytes);
  }
}

inline void BitUnpackScalar(const uint8_t* packed, size_t n, unsigned width,
                            uint32_t* out) {
  const uint64_t mask = (width >= 64) ? ~0ull : ((1ull << width) - 1);
  for (size_t i = 0; i < n; ++i) {
    const size_t bit = i * width;
    const size_t word_idx = bit >> 6;
    const unsigned off = static_cast<unsigned>(bit & 63);
    uint64_t lo;
    __builtin_memcpy(&lo, packed + 8 * word_idx, 8);
    uint64_t v = lo >> off;
    if (off + width > 64) {
      // The value straddles into the next word, which exists because the
      // value's last bit lies inside the padded payload.
      uint64_t hi;
      __builtin_memcpy(&hi, packed + 8 * (word_idx + 1), 8);
      v |= hi << (64 - off);
    }
    out[i] = static_cast<uint32_t>(v & mask);
  }
}

/// Readable slack the AVX2 unpack kernel requires *past* the packed
/// payload: it 64-bit-gathers at byte granularity, so the last values'
/// loads reach up to 7 bytes beyond their final bit. Callers (the
/// partition reader, tests) allocate payload + this; the garbage bits
/// are masked off, only readability matters. Defined unconditionally so
/// decode-buffer sizing is identical on every platform.
constexpr size_t kBitUnpackSlackBytes = 8;

#if defined(__x86_64__) || defined(__i386__)
/// AVX2 gather kernel for the dictionary-coded IN-list probe (set sizes
/// too large for the cmpeq chain): probes a per-dictionary membership
/// table — one 32-bit lane per code, 0xFFFFFFFF = member, 0 = not — with
/// _mm256_i32gather_epi32 for 8 codes at a time and packs the gathered
/// sign bits into the bitmap words, matching the scalar pack's bit order
/// (bit b = row base[b]). Fills the `full_words` complete 64-row words;
/// the caller packs the sub-word tail with the scalar reference. Every
/// code in `codes` must be a valid table index (storage guarantees codes
/// < dictionary size). Caller must have verified AVX2 support.
void InSetGatherWordsAvx2(const int32_t* codes, size_t full_words,
                          const uint32_t* table, uint64_t* words);

/// AVX2 DenseGroupIdsScalar: gathers 8 rows' codes per group column and
/// multiply-accumulates the strides in 32-bit lanes. Bit-identical to
/// the scalar reference (integer arithmetic). Caller must have verified
/// AVX2 support; row indices must be < 2^31.
void DenseGroupIdsAvx2(const int32_t* const* codes, const uint32_t* strides,
                       size_t n_group_cols, const uint32_t* rows, size_t n,
                       uint32_t* ids);

/// AVX2 GatherDoublesScalar: 4 doubles per _mm256_i32gather_pd. Pure
/// data movement, bit-identical by construction.
void GatherDoublesAvx2(const double* values, const uint32_t* rows, size_t n,
                       double* out);

/// AVX2 MinGatherScalar / MaxGatherScalar: lane-parallel reduction
/// (min/max are order-insensitive on NaN-free data, so lanes are safe
/// where SUM would not be).
double MinGatherAvx2(const double* values, const uint32_t* rows, size_t n);
double MaxGatherAvx2(const double* values, const uint32_t* rows, size_t n);

/// AVX2 BitUnpackScalar: 4 values per iteration via _mm256_i64gather at
/// byte offsets + per-lane variable shifts. Bit-identical to the scalar
/// reference (pure bit movement). `packed` must be readable for
/// BitPackedBytes(n, width) + kBitUnpackSlackBytes bytes.
void BitUnpackAvx2(const uint8_t* packed, size_t n, unsigned width,
                   uint32_t* out);

/// AVX2 ForDeltaReconstructScalar: zigzag-decodes 8 deltas per
/// iteration and prefix-sums them in 32-bit lanes with a running carry.
/// Wrapping integer arithmetic — bit-identical to the scalar reference.
void ForDeltaReconstructAvx2(const uint32_t* zz, size_t n, uint32_t base,
                             int32_t* out);
#endif

/// Resolves kAuto against the host CPU.
inline bool UseAvx2(SimdLevel level) {
  switch (level) {
    case SimdLevel::kNone:
      return false;
    case SimdLevel::kAvx2:
      return true;
    case SimdLevel::kAuto:
    default:
      return Avx2Available();
  }
}

}  // namespace ps3::runtime

#endif  // PS3_RUNTIME_SIMD_H_
