// Runtime SIMD capability dispatch for the explicit kernels in the query
// engine. Kernels are compiled with per-function target attributes, so the
// binary runs on any x86-64 (or non-x86) host and upgrades itself at
// runtime when AVX2 is present. The scalar kernels remain the bit-exactness
// reference; SIMD variants must produce identical bitmaps.
#ifndef PS3_RUNTIME_SIMD_H_
#define PS3_RUNTIME_SIMD_H_

namespace ps3::runtime {

/// Kernel selection for the vectorized execution policy.
enum class SimdLevel {
  kAuto,  ///< use AVX2 when the CPU supports it
  kNone,  ///< force the scalar word-packing kernels
  kAvx2,  ///< force AVX2 (caller must know the CPU supports it)
};

/// True when this process can execute AVX2 instructions.
bool Avx2Available();

/// Resolves kAuto against the host CPU.
inline bool UseAvx2(SimdLevel level) {
  switch (level) {
    case SimdLevel::kNone:
      return false;
    case SimdLevel::kAvx2:
      return true;
    case SimdLevel::kAuto:
    default:
      return Avx2Available();
  }
}

}  // namespace ps3::runtime

#endif  // PS3_RUNTIME_SIMD_H_
