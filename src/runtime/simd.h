// Runtime SIMD capability dispatch for the explicit kernels in the query
// engine. Kernels are compiled with per-function target attributes, so the
// binary runs on any x86-64 (or non-x86) host and upgrades itself at
// runtime when AVX2 is present. The scalar kernels remain the bit-exactness
// reference; SIMD variants must produce identical results.
//
// Grouped-aggregation kernels: the engine's determinism contract pins the
// *order of floating-point additions* per group (ascending row order,
// identical to the scalar interpreter), so SUM itself cannot be lane-
// parallelized without changing results. What can: everything feeding the
// accumulate loop. The kernels below gather the selected rows' group
// codes and expression values with AVX2 gathers (DenseGroupIds*,
// GatherDoubles*), leaving a tight scalar in-order accumulate; COUNT is
// integer-valued in doubles (exact at any order) and MIN/MAX are order-
// insensitive for the engine's finite, NaN-free data, so those reduce
// fully in lanes (MinGather*/MaxGather*).
#ifndef PS3_RUNTIME_SIMD_H_
#define PS3_RUNTIME_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ps3::runtime {

/// Kernel selection for the vectorized execution policy.
enum class SimdLevel {
  kAuto,  ///< use AVX2 when the CPU supports it
  kNone,  ///< force the scalar word-packing kernels
  kAvx2,  ///< force AVX2 (caller must know the CPU supports it)
};

/// True when this process can execute AVX2 instructions.
bool Avx2Available();

// ---------------------------------------------------------------------
// Scalar reference kernels (always available, any architecture). The
// AVX2 variants must match these bit-for-bit on the engine's data.

/// ids[k] = sum_g codes[g][rows[k]] * strides[g] — the dense group-id of
/// each selected row. Products and sums must fit uint32 (the engine caps
/// the dense id space at 2^20).
inline void DenseGroupIdsScalar(const int32_t* const* codes,
                                const uint32_t* strides, size_t n_group_cols,
                                const uint32_t* rows, size_t n,
                                uint32_t* ids) {
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = rows[k];
    uint32_t id = 0;
    for (size_t g = 0; g < n_group_cols; ++g) {
      id += static_cast<uint32_t>(codes[g][r]) * strides[g];
    }
    ids[k] = id;
  }
}

/// out[k] = values[rows[k]] — compacts the selected rows' values so the
/// ordered accumulate loop reads them contiguously.
inline void GatherDoublesScalar(const double* values, const uint32_t* rows,
                                size_t n, double* out) {
  for (size_t k = 0; k < n; ++k) out[k] = values[rows[k]];
}

/// Minimum of values[rows[k]] over k; n must be >= 1. Inputs must be
/// NaN-free (the engine's columns are); ties between +0.0 and -0.0 may
/// resolve to either representation.
inline double MinGatherScalar(const double* values, const uint32_t* rows,
                              size_t n) {
  double m = values[rows[0]];
  for (size_t k = 1; k < n; ++k) {
    const double v = values[rows[k]];
    if (v < m) m = v;
  }
  return m;
}

/// Maximum counterpart of MinGatherScalar.
inline double MaxGatherScalar(const double* values, const uint32_t* rows,
                              size_t n) {
  double m = values[rows[0]];
  for (size_t k = 1; k < n; ++k) {
    const double v = values[rows[k]];
    if (v > m) m = v;
  }
  return m;
}

#if defined(__x86_64__) || defined(__i386__)
/// AVX2 gather kernel for the dictionary-coded IN-list probe (set sizes
/// too large for the cmpeq chain): probes a per-dictionary membership
/// table — one 32-bit lane per code, 0xFFFFFFFF = member, 0 = not — with
/// _mm256_i32gather_epi32 for 8 codes at a time and packs the gathered
/// sign bits into the bitmap words, matching the scalar pack's bit order
/// (bit b = row base[b]). Fills the `full_words` complete 64-row words;
/// the caller packs the sub-word tail with the scalar reference. Every
/// code in `codes` must be a valid table index (storage guarantees codes
/// < dictionary size). Caller must have verified AVX2 support.
void InSetGatherWordsAvx2(const int32_t* codes, size_t full_words,
                          const uint32_t* table, uint64_t* words);

/// AVX2 DenseGroupIdsScalar: gathers 8 rows' codes per group column and
/// multiply-accumulates the strides in 32-bit lanes. Bit-identical to
/// the scalar reference (integer arithmetic). Caller must have verified
/// AVX2 support; row indices must be < 2^31.
void DenseGroupIdsAvx2(const int32_t* const* codes, const uint32_t* strides,
                       size_t n_group_cols, const uint32_t* rows, size_t n,
                       uint32_t* ids);

/// AVX2 GatherDoublesScalar: 4 doubles per _mm256_i32gather_pd. Pure
/// data movement, bit-identical by construction.
void GatherDoublesAvx2(const double* values, const uint32_t* rows, size_t n,
                       double* out);

/// AVX2 MinGatherScalar / MaxGatherScalar: lane-parallel reduction
/// (min/max are order-insensitive on NaN-free data, so lanes are safe
/// where SUM would not be).
double MinGatherAvx2(const double* values, const uint32_t* rows, size_t n);
double MaxGatherAvx2(const double* values, const uint32_t* rows, size_t n);
#endif

/// Resolves kAuto against the host CPU.
inline bool UseAvx2(SimdLevel level) {
  switch (level) {
    case SimdLevel::kNone:
      return false;
    case SimdLevel::kAvx2:
      return true;
    case SimdLevel::kAuto:
    default:
      return Avx2Available();
  }
}

}  // namespace ps3::runtime

#endif  // PS3_RUNTIME_SIMD_H_
