// Runtime SIMD capability dispatch for the explicit kernels in the query
// engine. Kernels are compiled with per-function target attributes, so the
// binary runs on any x86-64 (or non-x86) host and upgrades itself at
// runtime when AVX2 is present. The scalar kernels remain the bit-exactness
// reference; SIMD variants must produce identical bitmaps.
#ifndef PS3_RUNTIME_SIMD_H_
#define PS3_RUNTIME_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ps3::runtime {

/// Kernel selection for the vectorized execution policy.
enum class SimdLevel {
  kAuto,  ///< use AVX2 when the CPU supports it
  kNone,  ///< force the scalar word-packing kernels
  kAvx2,  ///< force AVX2 (caller must know the CPU supports it)
};

/// True when this process can execute AVX2 instructions.
bool Avx2Available();

#if defined(__x86_64__) || defined(__i386__)
/// AVX2 gather kernel for the dictionary-coded IN-list probe (set sizes
/// too large for the cmpeq chain): probes a per-dictionary membership
/// table — one 32-bit lane per code, 0xFFFFFFFF = member, 0 = not — with
/// _mm256_i32gather_epi32 for 8 codes at a time and packs the gathered
/// sign bits into the bitmap words, matching the scalar pack's bit order
/// (bit b = row base[b]). Fills the `full_words` complete 64-row words;
/// the caller packs the sub-word tail with the scalar reference. Every
/// code in `codes` must be a valid table index (storage guarantees codes
/// < dictionary size). Caller must have verified AVX2 support.
void InSetGatherWordsAvx2(const int32_t* codes, size_t full_words,
                          const uint32_t* table, uint64_t* words);
#endif

/// Resolves kAuto against the host CPU.
inline bool UseAvx2(SimdLevel level) {
  switch (level) {
    case SimdLevel::kNone:
      return false;
    case SimdLevel::kAvx2:
      return true;
    case SimdLevel::kAuto:
    default:
      return Avx2Available();
  }
}

}  // namespace ps3::runtime

#endif  // PS3_RUNTIME_SIMD_H_
