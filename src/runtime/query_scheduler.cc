#include "runtime/query_scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/hash.h"
#include "common/random.h"
#include "core/picker.h"
#include "query/compiler.h"
#include "storage/picked_source.h"

namespace ps3::runtime {

namespace {

size_t ResolveDrivers(int num_drivers) {
  if (num_drivers > 0) return static_cast<size_t>(num_drivers);
  unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(4, hw == 0 ? 1 : static_cast<size_t>(hw));
}

/// The structured "partitions are gone" Status: names every lost
/// partition so the consumer can log, alert, or re-plan around exactly
/// that set instead of guessing from a generic IO error.
Status LostStatus(const std::vector<size_t>& lost) {
  std::string msg = std::to_string(lost.size()) +
                    " partition(s) permanently lost:";
  for (size_t p : lost) {
    msg += ' ';
    msg += std::to_string(p);
  }
  msg += " (resubmit via SubmitDegradable with DegradedMode::kApproximate"
         " for a bounded-error answer over the reachable set)";
  return Status::Unavailable(std::move(msg));
}

/// Throws the structured failure if the source reports lost partitions.
/// The exact path's guard: an "exact" answer over a partial table is
/// never served silently.
void ThrowIfLost(const storage::PartitionSource& source) {
  const std::vector<size_t> lost = source.UnreachablePartitions();
  if (!lost.empty()) throw QueryFailed(LostStatus(lost));
}

}  // namespace

QueryScheduler::QueryScheduler() : QueryScheduler(Options()) {}

QueryScheduler::QueryScheduler(Options options)
    : pool_(options.pool != nullptr ? options.pool
                                    : &WorkerPool::Shared()) {
  const size_t n = ResolveDrivers(options.num_drivers);
  drivers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    drivers_.emplace_back([this] { DriverMain(); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& d : drivers_) d.join();
}

size_t QueryScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[0].size() + queues_[1].size() + executing_;
}

void QueryScheduler::Enqueue(std::function<void()> task,
                             QueryClass query_class) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[query_class == QueryClass::kInteractive ? 1 : 0].push_back(
        std::move(task));
  }
  cv_.notify_one();
}

void QueryScheduler::DriverMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || !queues_[0].empty() || !queues_[1].empty();
      });
      // Drain-on-destruction: exit only once both queues are empty, so
      // every admitted future becomes ready.
      // Interactive first: a latency-class query never waits behind the
      // batch backlog (or behind staged prefetch tasks, which enqueue as
      // batch) for a driver.
      std::deque<std::function<void()>>& q =
          !queues_[1].empty() ? queues_[1] : queues_[0];
      if (q.empty()) return;
      task = std::move(q.front());
      q.pop_front();
      ++executing_;
    }
    // packaged_task catches the body's exception and parks it in the
    // future, so a throwing query can't take the driver down.
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
    }
  }
}

QueryScheduler::Admission QueryScheduler::Admit(const SubmitOptions& submit,
                                                query::ExecOptions opts) const {
  Admission a;
  a.token = submit.cancel;
  if (a.token == nullptr && submit.deadline.count() != 0) {
    a.token = std::make_shared<CancelToken>();
  }
  if (a.token != nullptr && submit.deadline.count() != 0) {
    // Armed now — at admission — so time spent queued behind other tasks
    // counts against the deadline, which is what a latency SLO means.
    a.token->SetDeadline(std::chrono::steady_clock::now() + submit.deadline);
  }
  opts.pool = pool_;
  opts.query_class = submit.query_class;
  opts.cancel = a.token.get();
  a.opts = std::move(opts);
  return a;
}

// Classless overloads delegate to the multi-tenant ones: a default
// SubmitOptions is the batch class with no deadline and no token, which
// admits and executes exactly as the pre-class scheduler did.
std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::ShardedTable& table,
    query::ExecOptions opts) {
  return Submit(std::move(query), table, SubmitOptions{}, std::move(opts));
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::PartitionedTable& table,
    query::ExecOptions opts) {
  return Submit(std::move(query), table, SubmitOptions{}, std::move(opts));
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::PartitionedTable& table,
                               query::ExecOptions opts) {
  return SubmitPartials(std::move(query), table, SubmitOptions{},
                        std::move(opts));
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::ShardedTable& table,
                               query::ExecOptions opts) {
  return SubmitPartials(std::move(query), table, SubmitOptions{},
                        std::move(opts));
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::PartitionSource& source,
    query::ExecOptions opts) {
  return Submit(std::move(query), source, SubmitOptions{}, std::move(opts));
}

std::future<ApproxAnswer> QueryScheduler::SubmitApproximate(
    query::Query query, const storage::PartitionSource& source,
    const core::PartitionPicker& picker, ApproxOptions approx,
    query::ExecOptions opts) {
  return SubmitApproximate(std::move(query), source, picker, approx,
                           SubmitOptions{}, std::move(opts));
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::PartitionSource& source,
                               query::ExecOptions opts) {
  return SubmitPartials(std::move(query), source, SubmitOptions{},
                        std::move(opts));
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::ShardedTable& table,
    SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  return Defer(
      [q = std::move(query), &table, a = std::move(a)] {
        a.ThrowIfDead();
        return query::ExactAnswer(
            q, query::EvaluateAllPartitions(q, table, a.opts));
      },
      submit.query_class);
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::PartitionedTable& table,
    SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  return Defer(
      [q = std::move(query), &table, a = std::move(a)] {
        a.ThrowIfDead();
        return query::ExactAnswer(
            q, query::EvaluateAllPartitions(q, table, a.opts));
      },
      submit.query_class);
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::PartitionSource& source,
    SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  return Defer(
      [q = std::move(query), &source, a = std::move(a)] {
        a.ThrowIfDead();
        // An exact future cannot carry a degraded answer: lost
        // partitions fail fast with the structured Status *before* any
        // byte moves, naming the set to re-plan around.
        ThrowIfLost(source);
        return query::ExactAnswer(
            q, query::EvaluateAllPartitions(q, source, a.opts));
      },
      submit.query_class);
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::PartitionedTable& table,
                               SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  return Defer(
      [q = std::move(query), &table, a = std::move(a)] {
        a.ThrowIfDead();
        return query::EvaluateAllPartitions(q, table, a.opts);
      },
      submit.query_class);
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::ShardedTable& table,
                               SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  return Defer(
      [q = std::move(query), &table, a = std::move(a)] {
        a.ThrowIfDead();
        return query::EvaluateAllPartitions(q, table, a.opts);
      },
      submit.query_class);
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::PartitionSource& source,
                               SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  return Defer(
      [q = std::move(query), &source, a = std::move(a)] {
        a.ThrowIfDead();
        return query::EvaluateAllPartitions(q, source, a.opts);
      },
      submit.query_class);
}

std::future<ApproxAnswer> QueryScheduler::SubmitApproximate(
    query::Query query, const storage::PartitionSource& source,
    const core::PartitionPicker& picker, ApproxOptions approx,
    SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  return Defer(
      [q = std::move(query), &source, &picker, approx, a = std::move(a)] {
        a.ThrowIfDead();
        const query::ExecOptions& opts = a.opts;
        const double frac = approx.sampling_fraction;
        if (!(frac > 0.0) || frac > 1.0) {  // !(> 0) also rejects NaN
          throw std::invalid_argument(
              "SubmitApproximate: sampling_fraction must be in (0, 1]");
        }
        const size_t n = source.num_partitions();
        size_t budget =
            static_cast<size_t>(std::ceil(frac * static_cast<double>(n)));
        budget = std::max<size_t>(1, std::min(budget, n));
        const std::vector<size_t> lost = source.UnreachablePartitions();
        auto overlaps_lost = [&lost](const core::Selection& s) {
          for (const auto& wp : s.parts) {
            if (std::binary_search(lost.begin(), lost.end(), wp.partition)) {
              return true;
            }
          }
          return false;
        };
        core::Selection sel;
        {
          RandomEngine rng(approx.seed);
          sel = picker.Pick(q, budget, &rng, nullptr);
        }
        if (!lost.empty() && overlaps_lost(sel)) {
          // Re-pick around the lost set at *unchanged* budget: rounds
          // with seeds derived from the query seed, so the retry
          // sequence is deterministic and the first lost-free selection
          // wins. Deterministic pickers (and unlucky stochastic ones)
          // may never produce a lost-free pick — then fall back to
          // dropping the lost choices and rescaling the survivors'
          // weights by picked/surviving, which for a uniform all-weight
          // pick reduces to the HT weight n/|reachable ∩ picked|.
          constexpr int kRepickRounds = 8;
          bool found = false;
          for (int round = 1; round <= kRepickRounds && !found; ++round) {
            RandomEngine rng(approx.seed ^
                             Mix64(static_cast<uint64_t>(round)));
            core::Selection cand = picker.Pick(q, budget, &rng, nullptr);
            if (!overlaps_lost(cand)) {
              sel = std::move(cand);
              found = true;
            }
          }
          if (!found) {
            const size_t picked_count = sel.parts.size();
            core::Selection surviving;
            for (const auto& wp : sel.parts) {
              if (!std::binary_search(lost.begin(), lost.end(),
                                      wp.partition)) {
                surviving.parts.push_back(wp);
              }
            }
            if (surviving.parts.empty()) throw QueryFailed(LostStatus(lost));
            const double rescale =
                static_cast<double>(picked_count) /
                static_cast<double>(surviving.parts.size());
            for (auto& wp : surviving.parts) wp.weight *= rescale;
            sel = std::move(surviving);
          }
        }
        // Canonical combine order (ascending global partition index) pins
        // the FP merge order, so the answer's bit pattern is independent
        // of the order the picker emitted its choices in — and a full
        // uniform selection reproduces the exact answer bit for bit.
        query::CanonicalizeSelection(&sel.parts);
        std::vector<size_t> picked;
        picked.reserve(sel.parts.size());
        for (const auto& wp : sel.parts) picked.push_back(wp.partition);

        const storage::PickedSource view(source, picked);
        std::vector<query::PartitionAnswer> partials =
            query::EvaluateAllPartitions(q, view, opts);
        query::ApproxCombined combined =
            query::CombineWeightedWithError(q, partials, sel.parts);

        ApproxAnswer out;
        out.value = std::move(combined.value);
        out.error_estimate = std::move(combined.error);
        out.partitions_scanned = picked.size();
        out.partitions_total = n;
        out.bytes_moved = source.ColdScanBytes(
            picked, query::ReferencedColumns(query::CompileQuery(q)));
        return out;
      },
      submit.query_class);
}

std::future<ApproxAnswer> QueryScheduler::SubmitDegradable(
    query::Query query, const storage::PartitionSource& source,
    SubmitOptions submit, query::ExecOptions opts) {
  Admission a = Admit(submit, std::move(opts));
  const DegradedMode mode = submit.degraded_mode;
  return Defer(
      [q = std::move(query), &source, mode, a = std::move(a)] {
        a.ThrowIfDead();
        const size_t n = source.num_partitions();
        const std::vector<size_t> lost = source.UnreachablePartitions();
        std::vector<size_t> reachable;
        if (lost.empty()) {
          reachable.resize(n);
          std::iota(reachable.begin(), reachable.end(), size_t{0});
        } else {
          if (mode == DegradedMode::kFail) throw QueryFailed(LostStatus(lost));
          // Reachable = [0, n) minus the (sorted) lost set.
          reachable.reserve(n - std::min(n, lost.size()));
          auto it = lost.begin();
          for (size_t p = 0; p < n; ++p) {
            while (it != lost.end() && *it < p) ++it;
            if (it != lost.end() && *it == p) continue;
            reachable.push_back(p);
          }
          if (reachable.empty()) throw QueryFailed(LostStatus(lost));
        }
        // The degraded plan is the approximate path with the reachable
        // set as the "picked" partitions: the PickedSource view never
        // acquires a lost partition (so no load ever fails on one), and
        // the uniform HT weight n/|reachable| keeps the estimator
        // honest. With nothing lost the weights are exactly 1, the view
        // covers every partition, and the combine is bit-identical to
        // the exact path's ExactAnswer with a zero error surface.
        const std::vector<query::WeightedPartition> sel =
            query::DegradedSelection(reachable, n);
        const storage::PickedSource view(source, reachable);
        std::vector<query::PartitionAnswer> partials =
            query::EvaluateAllPartitions(q, view, a.opts);
        query::ApproxCombined combined =
            query::CombineWeightedWithError(q, partials, sel);

        ApproxAnswer out;
        out.value = std::move(combined.value);
        out.error_estimate = std::move(combined.error);
        out.partitions_scanned = reachable.size();
        out.partitions_total = n;
        out.bytes_moved = source.ColdScanBytes(
            reachable, query::ReferencedColumns(query::CompileQuery(q)));
        return out;
      },
      submit.query_class);
}

}  // namespace ps3::runtime
