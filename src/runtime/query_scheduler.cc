#include "runtime/query_scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/random.h"
#include "core/picker.h"
#include "query/compiler.h"
#include "storage/picked_source.h"

namespace ps3::runtime {

namespace {

size_t ResolveDrivers(int num_drivers) {
  if (num_drivers > 0) return static_cast<size_t>(num_drivers);
  unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(4, hw == 0 ? 1 : static_cast<size_t>(hw));
}

}  // namespace

QueryScheduler::QueryScheduler() : QueryScheduler(Options()) {}

QueryScheduler::QueryScheduler(Options options)
    : pool_(options.pool != nullptr ? options.pool
                                    : &WorkerPool::Shared()) {
  const size_t n = ResolveDrivers(options.num_drivers);
  drivers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    drivers_.emplace_back([this] { DriverMain(); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& d : drivers_) d.join();
}

size_t QueryScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + executing_;
}

void QueryScheduler::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void QueryScheduler::DriverMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain-on-destruction: exit only once the queue is empty, so every
      // admitted future becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }
    // packaged_task catches the body's exception and parks it in the
    // future, so a throwing query can't take the driver down.
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
    }
  }
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::ShardedTable& table,
    query::ExecOptions opts) {
  opts.pool = pool_;
  return Defer([q = std::move(query), &table, opts] {
    return query::ExactAnswer(q,
                              query::EvaluateAllPartitions(q, table, opts));
  });
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::PartitionedTable& table,
    query::ExecOptions opts) {
  opts.pool = pool_;
  return Defer([q = std::move(query), &table, opts] {
    return query::ExactAnswer(q,
                              query::EvaluateAllPartitions(q, table, opts));
  });
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::PartitionedTable& table,
                               query::ExecOptions opts) {
  opts.pool = pool_;
  return Defer([q = std::move(query), &table, opts] {
    return query::EvaluateAllPartitions(q, table, opts);
  });
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::ShardedTable& table,
                               query::ExecOptions opts) {
  opts.pool = pool_;
  return Defer([q = std::move(query), &table, opts] {
    return query::EvaluateAllPartitions(q, table, opts);
  });
}

std::future<query::QueryAnswer> QueryScheduler::Submit(
    query::Query query, const storage::PartitionSource& source,
    query::ExecOptions opts) {
  opts.pool = pool_;
  return Defer([q = std::move(query), &source, opts] {
    return query::ExactAnswer(q,
                              query::EvaluateAllPartitions(q, source, opts));
  });
}

std::future<ApproxAnswer> QueryScheduler::SubmitApproximate(
    query::Query query, const storage::PartitionSource& source,
    const core::PartitionPicker& picker, ApproxOptions approx,
    query::ExecOptions opts) {
  opts.pool = pool_;
  return Defer([q = std::move(query), &source, &picker, approx, opts] {
    const double frac = approx.sampling_fraction;
    if (!(frac > 0.0) || frac > 1.0) {  // !(> 0) also rejects NaN
      throw std::invalid_argument(
          "SubmitApproximate: sampling_fraction must be in (0, 1]");
    }
    const size_t n = source.num_partitions();
    size_t budget =
        static_cast<size_t>(std::ceil(frac * static_cast<double>(n)));
    budget = std::max<size_t>(1, std::min(budget, n));
    RandomEngine rng(approx.seed);
    core::Selection sel = picker.Pick(q, budget, &rng, nullptr);
    // Canonical combine order (ascending global partition index) pins the
    // FP merge order, so the answer's bit pattern is independent of the
    // order the picker emitted its choices in — and a full uniform
    // selection reproduces the exact answer bit for bit.
    query::CanonicalizeSelection(&sel.parts);
    std::vector<size_t> picked;
    picked.reserve(sel.parts.size());
    for (const auto& wp : sel.parts) picked.push_back(wp.partition);

    const storage::PickedSource view(source, picked);
    std::vector<query::PartitionAnswer> partials =
        query::EvaluateAllPartitions(q, view, opts);
    query::ApproxCombined combined =
        query::CombineWeightedWithError(q, partials, sel.parts);

    ApproxAnswer out;
    out.value = std::move(combined.value);
    out.error_estimate = std::move(combined.error);
    out.partitions_scanned = picked.size();
    out.partitions_total = n;
    out.bytes_moved = source.ColdScanBytes(
        picked, query::ReferencedColumns(query::CompileQuery(q)));
    return out;
  });
}

std::future<std::vector<query::PartitionAnswer>>
QueryScheduler::SubmitPartials(query::Query query,
                               const storage::PartitionSource& source,
                               query::ExecOptions opts) {
  opts.pool = pool_;
  return Defer([q = std::move(query), &source, opts] {
    return query::EvaluateAllPartitions(q, source, opts);
  });
}

}  // namespace ps3::runtime
