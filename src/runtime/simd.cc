#include "runtime/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ps3::runtime {

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2"))) void InSetGatherWordsAvx2(
    const int32_t* codes, size_t full_words, const uint32_t* table,
    uint64_t* words) {
  const int* t = reinterpret_cast<const int*>(table);
  for (size_t w = 0; w < full_words; ++w) {
    const int32_t* base = codes + (w << 6);
    uint64_t word = 0;
    for (unsigned g = 0; g < 8; ++g) {
      __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 8 * g));
      // Each lane becomes table[code]: all-ones for members, zero
      // otherwise, so movemask_ps reads the membership straight off the
      // sign bits.
      __m256i hit = _mm256_i32gather_epi32(t, idx, 4);
      unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
      word |= static_cast<uint64_t>(mask) << (8 * g);
    }
    words[w] = word;
  }
}

#endif  // x86

}  // namespace ps3::runtime
