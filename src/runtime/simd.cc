#include "runtime/simd.h"

namespace ps3::runtime {

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

}  // namespace ps3::runtime
