#include "runtime/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ps3::runtime {

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2"))) void InSetGatherWordsAvx2(
    const int32_t* codes, size_t full_words, const uint32_t* table,
    uint64_t* words) {
  const int* t = reinterpret_cast<const int*>(table);
  for (size_t w = 0; w < full_words; ++w) {
    const int32_t* base = codes + (w << 6);
    uint64_t word = 0;
    for (unsigned g = 0; g < 8; ++g) {
      __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 8 * g));
      // Each lane becomes table[code]: all-ones for members, zero
      // otherwise, so movemask_ps reads the membership straight off the
      // sign bits.
      __m256i hit = _mm256_i32gather_epi32(t, idx, 4);
      unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
      word |= static_cast<uint64_t>(mask) << (8 * g);
    }
    words[w] = word;
  }
}

__attribute__((target("avx2"))) void DenseGroupIdsAvx2(
    const int32_t* const* codes, const uint32_t* strides,
    size_t n_group_cols, const uint32_t* rows, size_t n, uint32_t* ids) {
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i ridx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(rows + k));
    __m256i id = _mm256_setzero_si256();
    for (size_t g = 0; g < n_group_cols; ++g) {
      const __m256i code = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(codes[g]), ridx, 4);
      const __m256i stride = _mm256_set1_epi32(
          static_cast<int>(strides[g]));
      // mullo + add in 32-bit lanes: the engine caps the id space at
      // 2^20, so no lane can wrap.
      id = _mm256_add_epi32(id, _mm256_mullo_epi32(code, stride));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + k), id);
  }
  if (k < n) {
    DenseGroupIdsScalar(codes, strides, n_group_cols, rows + k, n - k,
                        ids + k);
  }
}

__attribute__((target("avx2"))) void GatherDoublesAvx2(const double* values,
                                                       const uint32_t* rows,
                                                       size_t n,
                                                       double* out) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i ridx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rows + k));
    const __m256d v = _mm256_i32gather_pd(values, ridx, 8);
    _mm256_storeu_pd(out + k, v);
  }
  for (; k < n; ++k) out[k] = values[rows[k]];
}

__attribute__((target("avx2"))) double MinGatherAvx2(const double* values,
                                                     const uint32_t* rows,
                                                     size_t n) {
  size_t k = 0;
  double m = values[rows[0]];
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(m);
    for (; k + 4 <= n; k += 4) {
      const __m128i ridx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(rows + k));
      acc = _mm256_min_pd(acc, _mm256_i32gather_pd(values, ridx, 8));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d m2 = _mm_min_pd(lo, hi);
    const __m128d m1 = _mm_min_sd(m2, _mm_unpackhi_pd(m2, m2));
    m = _mm_cvtsd_f64(m1);
  }
  for (; k < n; ++k) {
    const double v = values[rows[k]];
    if (v < m) m = v;
  }
  return m;
}

__attribute__((target("avx2"))) double MaxGatherAvx2(const double* values,
                                                     const uint32_t* rows,
                                                     size_t n) {
  size_t k = 0;
  double m = values[rows[0]];
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(m);
    for (; k + 4 <= n; k += 4) {
      const __m128i ridx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(rows + k));
      acc = _mm256_max_pd(acc, _mm256_i32gather_pd(values, ridx, 8));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d m2 = _mm_max_pd(lo, hi);
    const __m128d m1 = _mm_max_sd(m2, _mm_unpackhi_pd(m2, m2));
    m = _mm_cvtsd_f64(m1);
  }
  for (; k < n; ++k) {
    const double v = values[rows[k]];
    if (v > m) m = v;
  }
  return m;
}

__attribute__((target("avx2"))) void BitUnpackAvx2(const uint8_t* packed,
                                                   size_t n, unsigned width,
                                                   uint32_t* out) {
  const __m256i mask = _mm256_set1_epi64x(
      width >= 64 ? -1 : static_cast<long long>((1ull << width) - 1));
  // Lane k reads the 8 bytes containing value (i+k)'s first bit and
  // shifts by the sub-byte remainder: a value of <= 32 bits starting
  // anywhere inside a byte always fits those 8 bytes.
  const uint64_t w = width;
  __m256i bitpos = _mm256_set_epi64x(static_cast<long long>(3 * w),
                                     static_cast<long long>(2 * w),
                                     static_cast<long long>(w), 0);
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * w));
  const __m256i seven = _mm256_set1_epi64x(7);
  const __m256i compact = _mm256_set_epi32(0, 0, 0, 0, 6, 4, 2, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i bytes = _mm256_srli_epi64(bitpos, 3);
    const __m256i shifts = _mm256_and_si256(bitpos, seven);
    __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(packed), bytes, 1);
    v = _mm256_srlv_epi64(v, shifts);
    v = _mm256_and_si256(v, mask);
    const __m128i four = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(v, compact));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), four);
    bitpos = _mm256_add_epi64(bitpos, step);
  }
  if (i < n) {
    // Tail re-derives positions from i — identical bit arithmetic.
    const uint64_t mask_s = width >= 64 ? ~0ull : ((1ull << width) - 1);
    for (; i < n; ++i) {
      const size_t bit = i * w;
      uint64_t word;
      __builtin_memcpy(&word, packed + (bit >> 3), 8);
      out[i] = static_cast<uint32_t>((word >> (bit & 7)) & mask_s);
    }
  }
}

__attribute__((target("avx2"))) void ForDeltaReconstructAvx2(
    const uint32_t* zz, size_t n, uint32_t base, int32_t* out) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i zero = _mm256_setzero_si256();
  __m256i carry = _mm256_set1_epi32(static_cast<int>(base));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i z = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(zz + i));
    // Zigzag decode per lane: (z >> 1) ^ -(z & 1).
    __m256i d = _mm256_xor_si256(
        _mm256_srli_epi32(z, 1),
        _mm256_sub_epi32(zero, _mm256_and_si256(z, one)));
    // In-register inclusive prefix sum within each 128-bit half...
    d = _mm256_add_epi32(d, _mm256_slli_si256(d, 4));
    d = _mm256_add_epi32(d, _mm256_slli_si256(d, 8));
    // ...then fold the low half's total into the high half: broadcast
    // lane 3 everywhere and zero it out of the low half.
    __m256i low_total =
        _mm256_permutevar8x32_epi32(d, _mm256_set1_epi32(3));
    low_total = _mm256_blend_epi32(zero, low_total, 0xF0);
    d = _mm256_add_epi32(d, low_total);
    const __m256i v = _mm256_add_epi32(d, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    carry = _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(7));
  }
  if (i < n) {
    uint32_t v = static_cast<uint32_t>(
        _mm256_extract_epi32(carry, 0));
    for (; i < n; ++i) {
      v += ZigzagDecode32(zz[i]);
      out[i] = static_cast<int32_t>(v);
    }
  }
}

#endif  // x86

}  // namespace ps3::runtime
