#include "runtime/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ps3::runtime {

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2"))) void InSetGatherWordsAvx2(
    const int32_t* codes, size_t full_words, const uint32_t* table,
    uint64_t* words) {
  const int* t = reinterpret_cast<const int*>(table);
  for (size_t w = 0; w < full_words; ++w) {
    const int32_t* base = codes + (w << 6);
    uint64_t word = 0;
    for (unsigned g = 0; g < 8; ++g) {
      __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 8 * g));
      // Each lane becomes table[code]: all-ones for members, zero
      // otherwise, so movemask_ps reads the membership straight off the
      // sign bits.
      __m256i hit = _mm256_i32gather_epi32(t, idx, 4);
      unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
      word |= static_cast<uint64_t>(mask) << (8 * g);
    }
    words[w] = word;
  }
}

__attribute__((target("avx2"))) void DenseGroupIdsAvx2(
    const int32_t* const* codes, const uint32_t* strides,
    size_t n_group_cols, const uint32_t* rows, size_t n, uint32_t* ids) {
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i ridx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(rows + k));
    __m256i id = _mm256_setzero_si256();
    for (size_t g = 0; g < n_group_cols; ++g) {
      const __m256i code = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(codes[g]), ridx, 4);
      const __m256i stride = _mm256_set1_epi32(
          static_cast<int>(strides[g]));
      // mullo + add in 32-bit lanes: the engine caps the id space at
      // 2^20, so no lane can wrap.
      id = _mm256_add_epi32(id, _mm256_mullo_epi32(code, stride));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + k), id);
  }
  if (k < n) {
    DenseGroupIdsScalar(codes, strides, n_group_cols, rows + k, n - k,
                        ids + k);
  }
}

__attribute__((target("avx2"))) void GatherDoublesAvx2(const double* values,
                                                       const uint32_t* rows,
                                                       size_t n,
                                                       double* out) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i ridx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rows + k));
    const __m256d v = _mm256_i32gather_pd(values, ridx, 8);
    _mm256_storeu_pd(out + k, v);
  }
  for (; k < n; ++k) out[k] = values[rows[k]];
}

__attribute__((target("avx2"))) double MinGatherAvx2(const double* values,
                                                     const uint32_t* rows,
                                                     size_t n) {
  size_t k = 0;
  double m = values[rows[0]];
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(m);
    for (; k + 4 <= n; k += 4) {
      const __m128i ridx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(rows + k));
      acc = _mm256_min_pd(acc, _mm256_i32gather_pd(values, ridx, 8));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d m2 = _mm_min_pd(lo, hi);
    const __m128d m1 = _mm_min_sd(m2, _mm_unpackhi_pd(m2, m2));
    m = _mm_cvtsd_f64(m1);
  }
  for (; k < n; ++k) {
    const double v = values[rows[k]];
    if (v < m) m = v;
  }
  return m;
}

__attribute__((target("avx2"))) double MaxGatherAvx2(const double* values,
                                                     const uint32_t* rows,
                                                     size_t n) {
  size_t k = 0;
  double m = values[rows[0]];
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(m);
    for (; k + 4 <= n; k += 4) {
      const __m128i ridx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(rows + k));
      acc = _mm256_max_pd(acc, _mm256_i32gather_pd(values, ridx, 8));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d m2 = _mm_max_pd(lo, hi);
    const __m128d m1 = _mm_max_sd(m2, _mm_unpackhi_pd(m2, m2));
    m = _mm_cvtsd_f64(m1);
  }
  for (; k < n; ++k) {
    const double v = values[rows[k]];
    if (v > m) m = v;
  }
  return m;
}

#endif  // x86

}  // namespace ps3::runtime
