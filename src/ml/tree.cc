#include "ml/tree.h"

#include <algorithm>
#include <cassert>

namespace ps3::ml {

namespace {

struct SplitChoice {
  double gain = 0.0;
  int feature = -1;
  uint16_t bin = 0;  // rows with BinAt <= bin go left
};

double LeafObjective(double grad_sum, size_t count, double lambda) {
  double denom = static_cast<double>(count) + lambda;
  return grad_sum * grad_sum / denom;
}

}  // namespace

RegressionTree RegressionTree::Fit(const BinnedDataset& data,
                                   const std::vector<double>& grad,
                                   std::vector<uint32_t> rows,
                                   const TreeParams& params,
                                   RandomEngine* rng,
                                   std::vector<double>* feature_gain) {
  RegressionTree tree;
  // Per-tree feature subsample.
  std::vector<uint32_t> features;
  const size_t m = data.num_features();
  if (params.colsample >= 1.0) {
    features.resize(m);
    for (size_t j = 0; j < m; ++j) features[j] = static_cast<uint32_t>(j);
  } else {
    size_t k = std::max<size_t>(
        1, static_cast<size_t>(params.colsample * static_cast<double>(m)));
    auto picked = SampleWithoutReplacement(m, k, rng);
    features.assign(picked.begin(), picked.end());
  }
  tree.GrowNode(data, grad, rows, 0, rows.size(), 0, params, features,
                feature_gain);
  return tree;
}

int RegressionTree::GrowNode(const BinnedDataset& data,
                             const std::vector<double>& grad,
                             std::vector<uint32_t>& rows, size_t begin,
                             size_t end, int depth, const TreeParams& params,
                             const std::vector<uint32_t>& features,
                             std::vector<double>* feature_gain) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  NodeStats total;
  for (size_t i = begin; i < end; ++i) {
    total.grad_sum += grad[rows[i]];
    ++total.count;
  }
  const double leaf_value =
      -total.grad_sum / (static_cast<double>(total.count) + params.lambda);

  auto make_leaf = [&]() {
    nodes_[node_id].value = leaf_value;
    return node_id;
  };
  if (depth >= params.max_depth ||
      total.count < 2 * static_cast<size_t>(params.min_samples_leaf)) {
    return make_leaf();
  }

  // Histogram split search over the feature subset.
  SplitChoice best;
  const double parent_obj =
      LeafObjective(total.grad_sum, total.count, params.lambda);
  std::vector<NodeStats> hist;
  for (uint32_t f : features) {
    const size_t bins = data.NumBins(f);
    if (bins < 2) continue;
    hist.assign(bins, NodeStats{});
    for (size_t i = begin; i < end; ++i) {
      uint32_t r = rows[i];
      NodeStats& cell = hist[data.BinAt(r, f)];
      cell.grad_sum += grad[r];
      ++cell.count;
    }
    double gl = 0.0;
    size_t nl = 0;
    for (size_t b = 0; b + 1 < bins; ++b) {
      gl += hist[b].grad_sum;
      nl += hist[b].count;
      size_t nr = total.count - nl;
      if (nl < static_cast<size_t>(params.min_samples_leaf) ||
          nr < static_cast<size_t>(params.min_samples_leaf)) {
        continue;
      }
      double gain = LeafObjective(gl, nl, params.lambda) +
                    LeafObjective(total.grad_sum - gl, nr, params.lambda) -
                    parent_obj;
      if (gain > best.gain) {
        best = {gain, static_cast<int>(f), static_cast<uint16_t>(b)};
      }
    }
  }
  if (best.feature < 0 || best.gain <= params.min_split_gain) {
    return make_leaf();
  }
  if (feature_gain != nullptr) {
    (*feature_gain)[static_cast<size_t>(best.feature)] += best.gain;
  }

  // Stable in-place partition: left = bins <= split bin.
  auto mid_it = std::stable_partition(
      rows.begin() + static_cast<ptrdiff_t>(begin),
      rows.begin() + static_cast<ptrdiff_t>(end), [&](uint32_t r) {
        return data.BinAt(r, static_cast<size_t>(best.feature)) <= best.bin;
      });
  size_t mid = static_cast<size_t>(mid_it - rows.begin());
  assert(mid > begin && mid < end);

  nodes_[node_id].feature = best.feature;
  nodes_[node_id].bin = best.bin;
  nodes_[node_id].threshold =
      data.Edge(static_cast<size_t>(best.feature), best.bin);
  int left = GrowNode(data, grad, rows, begin, mid, depth + 1, params,
                      features, feature_gain);
  int right = GrowNode(data, grad, rows, mid, end, depth + 1, params,
                       features, feature_gain);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const double* row) const {
  if (nodes_.empty()) return 0.0;
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& nd = nodes_[cur];
    cur = row[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[cur].value;
}

void RegressionTree::Serialize(BinaryWriter* w) const {
  w->PutU32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    w->PutI32(n.feature);
    w->PutDouble(n.threshold);
    w->PutU32(n.bin);
    w->PutI32(n.left);
    w->PutI32(n.right);
    w->PutDouble(n.value);
  }
}

Result<RegressionTree> RegressionTree::Deserialize(BinaryReader* r) {
  auto count = r->GetU32();
  if (!count.ok()) return count.status();
  RegressionTree tree;
  tree.nodes_.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Node n;
    auto feature = r->GetI32();
    if (!feature.ok()) return feature.status();
    n.feature = *feature;
    auto threshold = r->GetDouble();
    if (!threshold.ok()) return threshold.status();
    n.threshold = *threshold;
    auto bin = r->GetU32();
    if (!bin.ok()) return bin.status();
    n.bin = static_cast<uint16_t>(*bin);
    auto left = r->GetI32();
    if (!left.ok()) return left.status();
    n.left = *left;
    auto right = r->GetI32();
    if (!right.ok()) return right.status();
    n.right = *right;
    auto value = r->GetDouble();
    if (!value.ok()) return value.status();
    n.value = *value;
    // Child indices must stay inside the node array.
    int max_idx = static_cast<int>(*count);
    if (n.feature >= 0 && (n.left < 0 || n.left >= max_idx || n.right < 0 ||
                           n.right >= max_idx)) {
      return Status::OutOfRange("corrupt tree: child index out of range");
    }
    tree.nodes_.push_back(n);
  }
  return tree;
}

double RegressionTree::PredictBinned(const BinnedDataset& data,
                                     size_t row) const {
  if (nodes_.empty()) return 0.0;
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& nd = nodes_[cur];
    cur = data.BinAt(row, static_cast<size_t>(nd.feature)) <= nd.bin
              ? nd.left
              : nd.right;
  }
  return nodes_[cur].value;
}

}  // namespace ps3::ml
