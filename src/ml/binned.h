// Feature quantization for histogram-based tree learning. Each feature is
// discretized into at most `max_bins + 1` ordinal bins using training-set
// quantiles; split finding then scans per-bin gradient histograms instead
// of sorted raw values.
#ifndef PS3_ML_BINNED_H_
#define PS3_ML_BINNED_H_

#include <cstdint>
#include <vector>

#include "ml/matrix_view.h"

namespace ps3::ml {

class BinnedDataset {
 public:
  static constexpr int kDefaultMaxBins = 32;

  /// Quantizes `X`. Bin edges are (deduplicated) quantiles per feature.
  static BinnedDataset Build(ConstMatrixView X, int max_bins = kDefaultMaxBins);

  size_t num_rows() const { return n_; }
  size_t num_features() const { return m_; }

  /// Bin of row i, feature j (0 .. NumBins(j)-1).
  uint16_t BinAt(size_t i, size_t j) const { return bins_[i * m_ + j]; }

  /// Number of bins for feature j (== edges.size() + 1).
  size_t NumBins(size_t j) const { return edges_[j].size() + 1; }

  /// Split thresholds: a split at bin b sends rows with value <= Edge(j, b)
  /// left. Valid for b in [0, NumBins(j) - 2].
  double Edge(size_t j, size_t b) const { return edges_[j][b]; }

  /// Bin index for a raw feature value (used at prediction time in tests).
  uint16_t BinOf(size_t j, double v) const;

 private:
  size_t n_ = 0;
  size_t m_ = 0;
  std::vector<uint16_t> bins_;              // n x m
  std::vector<std::vector<double>> edges_;  // per feature, ascending
};

}  // namespace ps3::ml

#endif  // PS3_ML_BINNED_H_
