// Non-owning row-major matrix view used by the learning components.
#ifndef PS3_ML_MATRIX_VIEW_H_
#define PS3_ML_MATRIX_VIEW_H_

#include <cstddef>

namespace ps3::ml {

struct ConstMatrixView {
  const double* data = nullptr;
  size_t n = 0;  ///< rows
  size_t m = 0;  ///< columns

  const double* Row(size_t i) const { return data + i * m; }
  double At(size_t i, size_t j) const { return data[i * m + j]; }
};

}  // namespace ps3::ml

#endif  // PS3_ML_MATRIX_VIEW_H_
