#include "ml/binned.h"

#include <algorithm>
#include <cassert>

namespace ps3::ml {

BinnedDataset BinnedDataset::Build(ConstMatrixView X, int max_bins) {
  assert(max_bins >= 2 && max_bins <= 65535);
  BinnedDataset out;
  out.n_ = X.n;
  out.m_ = X.m;
  out.edges_.resize(X.m);
  out.bins_.resize(X.n * X.m);

  std::vector<double> col(X.n);
  for (size_t j = 0; j < X.m; ++j) {
    for (size_t i = 0; i < X.n; ++i) col[i] = X.At(i, j);
    std::sort(col.begin(), col.end());
    // Candidate edges at uniform quantiles; dedupe to drop empty bins.
    auto& edges = out.edges_[j];
    for (int b = 1; b < max_bins; ++b) {
      size_t idx = (static_cast<size_t>(b) * X.n) / max_bins;
      if (idx >= X.n) break;
      double e = col[idx];
      if (edges.empty() || e > edges.back()) edges.push_back(e);
    }
    // Drop the top edge if it equals the max (nothing would go right).
    while (!edges.empty() && edges.back() >= col.back()) edges.pop_back();
    for (size_t i = 0; i < X.n; ++i) {
      out.bins_[i * X.m + j] = out.BinOf(j, X.At(i, j));
    }
  }
  return out;
}

uint16_t BinnedDataset::BinOf(size_t j, double v) const {
  const auto& edges = edges_[j];
  // First edge >= v; bin b covers (edges[b-1], edges[b]].
  size_t b = static_cast<size_t>(
      std::lower_bound(edges.begin(), edges.end(), v) - edges.begin());
  return static_cast<uint16_t>(b);
}

}  // namespace ps3::ml
