// Single regression tree grown greedily with histogram split finding.
// Squared-error objective with L2 leaf regularization (XGBoost-style
// gain/leaf formulas with hessian == sample count).
#ifndef PS3_ML_TREE_H_
#define PS3_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "ml/binned.h"
#include "ml/matrix_view.h"

namespace ps3::ml {

struct TreeParams {
  int max_depth = 3;
  double lambda = 1.0;          ///< L2 regularization on leaf values
  int min_samples_leaf = 8;
  double min_split_gain = 1e-9;
  double colsample = 1.0;       ///< fraction of features tried per tree
};

class RegressionTree {
 public:
  /// Fits to gradients: leaf values approximate -mean(grad) (Newton step
  /// for squared loss). `rows` selects the training subset. `feature_gain`
  /// accumulates split gains per feature (may be null).
  static RegressionTree Fit(const BinnedDataset& data,
                            const std::vector<double>& grad,
                            std::vector<uint32_t> rows,
                            const TreeParams& params, RandomEngine* rng,
                            std::vector<double>* feature_gain);

  /// Prediction from raw feature values.
  double Predict(const double* row) const;

  /// Prediction for a row of the training dataset (bin comparison; exactly
  /// matches Predict on the raw values the bins came from).
  double PredictBinned(const BinnedDataset& data, size_t row) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Binary persistence (model files; see core/Ps3Model Save/Load).
  void Serialize(BinaryWriter* w) const;
  static Result<RegressionTree> Deserialize(BinaryReader* r);

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left if value <= threshold
    uint16_t bin = 0;        // go left if bin <= this
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf output
  };

  struct NodeStats {
    double grad_sum = 0.0;
    size_t count = 0;
  };

  int GrowNode(const BinnedDataset& data, const std::vector<double>& grad,
               std::vector<uint32_t>& rows, size_t begin, size_t end,
               int depth, const TreeParams& params,
               const std::vector<uint32_t>& features,
               std::vector<double>* feature_gain);

  std::vector<Node> nodes_;
};

}  // namespace ps3::ml

#endif  // PS3_ML_TREE_H_
