// Gradient-boosted regression trees with squared-error loss — the
// from-scratch stand-in for the paper's XGBoost regressors (§4.3).
// Reports per-feature "gain" importance as used in Figure 5.
#ifndef PS3_ML_GBDT_H_
#define PS3_ML_GBDT_H_

#include <vector>

#include "common/random.h"
#include "ml/binned.h"
#include "ml/matrix_view.h"
#include "ml/tree.h"

namespace ps3::ml {

struct GbdtParams {
  int num_trees = 25;
  double learning_rate = 0.2;
  double subsample = 1.0;  ///< row fraction per tree
  TreeParams tree;
  uint64_t seed = 0xC0FFEE;
};

class Gbdt {
 public:
  /// Trains on a pre-binned design matrix (so several models over the same
  /// features — PS3 trains k of them — share the quantization cost).
  static Gbdt Train(const BinnedDataset& binned, const std::vector<double>& y,
                    const GbdtParams& params);

  double Predict(const double* row) const;
  std::vector<double> PredictMatrix(ConstMatrixView X) const;

  /// Total split gain per feature, normalized to sum to 1 (0 if no splits).
  const std::vector<double>& feature_gain() const { return feature_gain_; }

  double base_score() const { return base_score_; }
  size_t num_trees() const { return trees_.size(); }

  /// Binary persistence.
  void Serialize(BinaryWriter* w) const;
  static Result<Gbdt> Deserialize(BinaryReader* r);

 private:
  double base_score_ = 0.0;
  double learning_rate_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> feature_gain_;
};

}  // namespace ps3::ml

#endif  // PS3_ML_GBDT_H_
