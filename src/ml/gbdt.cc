#include "ml/gbdt.h"

#include <cassert>
#include <numeric>

namespace ps3::ml {

Gbdt Gbdt::Train(const BinnedDataset& binned, const std::vector<double>& y,
                 const GbdtParams& params) {
  assert(binned.num_rows() == y.size());
  Gbdt model;
  model.learning_rate_ = params.learning_rate;
  model.feature_gain_.assign(binned.num_features(), 0.0);

  const size_t n = binned.num_rows();
  if (n == 0) return model;
  model.base_score_ =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);

  RandomEngine rng(params.seed);
  std::vector<double> pred(n, model.base_score_);
  std::vector<double> grad(n);
  for (int t = 0; t < params.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) grad[i] = pred[i] - y[i];

    std::vector<uint32_t> rows;
    if (params.subsample >= 1.0) {
      rows.resize(n);
      for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
    } else {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(params.subsample * static_cast<double>(n)));
      auto picked = SampleWithoutReplacement(n, k, &rng);
      rows.assign(picked.begin(), picked.end());
    }

    RegressionTree tree =
        RegressionTree::Fit(binned, grad, std::move(rows), params.tree, &rng,
                            &model.feature_gain_);
    // Update predictions on all rows (not just the subsample): the next
    // round's gradients need them.
    for (size_t i = 0; i < n; ++i) {
      pred[i] += params.learning_rate * tree.PredictBinned(binned, i);
    }
    model.trees_.push_back(std::move(tree));
  }
  // Normalize gain importance to fractions (Figure 5 reports percentages).
  double total_gain = std::accumulate(model.feature_gain_.begin(),
                                      model.feature_gain_.end(), 0.0);
  if (total_gain > 0.0) {
    for (double& g : model.feature_gain_) g /= total_gain;
  }
  return model;
}

void Gbdt::Serialize(BinaryWriter* w) const {
  w->PutDouble(base_score_);
  w->PutDouble(learning_rate_);
  w->PutU32(static_cast<uint32_t>(trees_.size()));
  for (const auto& tree : trees_) tree.Serialize(w);
  w->PutDoubleVector(feature_gain_);
}

Result<Gbdt> Gbdt::Deserialize(BinaryReader* r) {
  Gbdt model;
  auto base = r->GetDouble();
  if (!base.ok()) return base.status();
  model.base_score_ = *base;
  auto lr = r->GetDouble();
  if (!lr.ok()) return lr.status();
  model.learning_rate_ = *lr;
  auto count = r->GetU32();
  if (!count.ok()) return count.status();
  for (uint32_t i = 0; i < *count; ++i) {
    auto tree = RegressionTree::Deserialize(r);
    if (!tree.ok()) return tree.status();
    model.trees_.push_back(std::move(tree).value());
  }
  auto gain = r->GetDoubleVector();
  if (!gain.ok()) return gain.status();
  model.feature_gain_ = std::move(gain).value();
  return model;
}

double Gbdt::Predict(const double* row) const {
  double out = base_score_;
  for (const auto& tree : trees_) {
    out += learning_rate_ * tree.Predict(row);
  }
  return out;
}

std::vector<double> Gbdt::PredictMatrix(ConstMatrixView X) const {
  std::vector<double> out(X.n);
  for (size_t i = 0; i < X.n; ++i) out[i] = Predict(X.Row(i));
  return out;
}

}  // namespace ps3::ml
