// Per-partition summary statistics: one sketch bundle per column per
// partition (§3.1), plus table-level derived state — global heavy hitters
// and per-partition occurrence bitmaps (§3.2).
#ifndef PS3_STATS_TABLE_STATS_H_
#define PS3_STATS_TABLE_STATS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sketch/akmv.h"
#include "sketch/exact_freq.h"
#include "sketch/heavy_hitter.h"
#include "sketch/histogram.h"
#include "sketch/measures.h"
#include "storage/table.h"

namespace ps3::stats {

/// All sketches for one column of one partition. Measures and the exact
/// frequency table are type-dependent (numeric vs categorical); histogram,
/// AKMV and heavy hitters exist for every column.
struct ColumnStats {
  bool categorical = false;
  sketch::Measures measures;                  // numeric only
  sketch::EquiDepthHistogram histogram;       // hashed values if categorical
  sketch::AkmvSketch akmv;
  sketch::HeavyHitters heavy_hitters{0.01};
  sketch::ExactFrequencyTable exact_freq;     // categorical only

  /// Serialized footprint split by sketch family (Table 4 columns).
  size_t HistogramBytes() const { return histogram.SerializedBytes(); }
  size_t MeasureBytes() const;
  size_t AkmvBytes() const { return akmv.SerializedBytes(); }
  size_t HeavyHitterBytes() const;
};

struct PartitionStats {
  size_t num_rows = 0;
  std::vector<ColumnStats> columns;
};

/// Storage-overhead accounting for Table 4.
struct StorageReport {
  double total_kb = 0.0;
  double histogram_kb = 0.0;
  double heavy_hitter_kb = 0.0;
  double akmv_kb = 0.0;
  double measure_kb = 0.0;
};

class TableStats {
 public:
  size_t num_partitions() const { return partitions_.size(); }
  size_t num_columns() const {
    return partitions_.empty() ? 0 : partitions_[0].columns.size();
  }

  const PartitionStats& partition(size_t i) const { return partitions_[i]; }

  /// Global heavy-hitter keys for a column (bitmap-bearing columns only;
  /// empty otherwise), most frequent first, capped at bitmap capacity.
  const std::vector<int64_t>& global_heavy_hitters(size_t col) const {
    return global_hh_[col];
  }

  /// Occurrence bitmap (§3.2): bit i of partition p / column c is set when
  /// global heavy hitter i is also a heavy hitter of partition p.
  const std::vector<uint8_t>& occurrence_bitmap(size_t part,
                                                size_t col) const {
    return bitmaps_[part][col];
  }

  /// True when the column carries occurrence bitmaps (grouping columns).
  bool has_bitmap(size_t col) const { return !global_hh_[col].empty(); }

  /// Average per-partition storage (in KB) by sketch family.
  StorageReport ComputeStorageReport() const;

 private:
  friend class StatsBuilder;

  std::vector<PartitionStats> partitions_;
  std::vector<std::vector<int64_t>> global_hh_;  // per column
  // bitmaps_[partition][column] -> bit per global heavy hitter
  std::vector<std::vector<std::vector<uint8_t>>> bitmaps_;
};

}  // namespace ps3::stats

#endif  // PS3_STATS_TABLE_STATS_H_
