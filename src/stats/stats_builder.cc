#include "stats/stats_builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "runtime/worker_pool.h"

namespace ps3::stats {

namespace {

/// 64-bit identity for a numeric value (bit pattern, -0.0 canonicalized).
int64_t NumericKey(double v) {
  if (v == 0.0) v = 0.0;
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

ColumnStats StatsBuilder::BuildColumn(const storage::Partition& part,
                                      size_t col) const {
  const auto& schema = part.table().schema();
  ColumnStats cs;
  cs.categorical = schema.IsCategorical(col);
  cs.akmv = sketch::AkmvSketch(options_.akmv_k);
  cs.heavy_hitters = sketch::HeavyHitters(options_.hh_support);
  cs.exact_freq =
      sketch::ExactFrequencyTable(options_.exact_freq_max_distinct);

  const size_t n = part.num_rows();
  std::vector<double> hist_values;
  hist_values.reserve(n);

  if (cs.categorical) {
    const int32_t* codes = part.CodeSpan(col);
    for (size_t r = 0; r < n; ++r) {
      int32_t code = codes[r];
      uint64_t h = HashInt(code);
      // Histogram over hashes of the strings (§3.1).
      hist_values.push_back(HashToUnit(h));
      cs.akmv.UpdateHash(h);
      cs.heavy_hitters.Update(code);
      cs.exact_freq.Update(code);
    }
  } else {
    const double* values = part.NumericSpan(col);
    for (size_t r = 0; r < n; ++r) {
      double v = values[r];
      cs.measures.Update(v);
      hist_values.push_back(v);
      cs.akmv.UpdateHash(HashDouble(v));
      cs.heavy_hitters.Update(NumericKey(v));
    }
  }
  cs.histogram = sketch::EquiDepthHistogram::Build(std::move(hist_values),
                                                   options_.histogram_buckets);
  return cs;
}

TableStats StatsBuilder::Build(const storage::PartitionedTable& table) const {
  TableStats stats;
  const size_t n_parts = table.num_partitions();
  const size_t n_cols = table.schema().num_columns();

  // Per-partition sketch pass: partitions are independent, so the build
  // parallelizes with an ordered (index-addressed) reduction.
  stats.partitions_.resize(n_parts);
  runtime::WorkerPool& pool = options_.pool != nullptr
                                  ? *options_.pool
                                  : runtime::WorkerPool::Shared();
  pool.ParallelFor(
      n_parts,
      [&](size_t p) {
        storage::Partition part = table.partition(p);
        stats.partitions_[p].num_rows = part.num_rows();
        stats.partitions_[p].columns.reserve(n_cols);
        for (size_t c = 0; c < n_cols; ++c) {
          stats.partitions_[p].columns.push_back(BuildColumn(part, c));
        }
      },
      options_.num_threads);

  // Global heavy hitters (§3.2): combine per-partition heavy hitters,
  // weight by their (lower-bound) counts, keep the top bitmap_k keys.
  stats.global_hh_.resize(n_cols);
  std::unordered_set<size_t> grouping(options_.grouping_columns.begin(),
                                      options_.grouping_columns.end());
  for (size_t c = 0; c < n_cols; ++c) {
    if (!grouping.count(c)) continue;
    std::unordered_map<int64_t, uint64_t> combined;
    for (size_t p = 0; p < n_parts; ++p) {
      for (const auto& item :
           stats.partitions_[p].columns[c].heavy_hitters.Items()) {
        combined[item.key] += item.count;
      }
    }
    std::vector<std::pair<int64_t, uint64_t>> ranked(combined.begin(),
                                                     combined.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    size_t k = std::min(options_.bitmap_k, ranked.size());
    stats.global_hh_[c].reserve(k);
    for (size_t i = 0; i < k; ++i) {
      stats.global_hh_[c].push_back(ranked[i].first);
    }
  }

  // Occurrence bitmaps: bit i set when global HH i is a local HH.
  stats.bitmaps_.resize(n_parts);
  for (size_t p = 0; p < n_parts; ++p) {
    stats.bitmaps_[p].resize(n_cols);
    for (size_t c = 0; c < n_cols; ++c) {
      const auto& ghh = stats.global_hh_[c];
      if (ghh.empty()) continue;
      std::unordered_set<int64_t> local;
      for (const auto& item :
           stats.partitions_[p].columns[c].heavy_hitters.Items()) {
        local.insert(item.key);
      }
      auto& bm = stats.bitmaps_[p][c];
      bm.resize(ghh.size());
      for (size_t i = 0; i < ghh.size(); ++i) {
        bm[i] = local.count(ghh[i]) ? 1 : 0;
      }
    }
  }
  return stats;
}

}  // namespace ps3::stats
