// Builds per-partition sketches in a single pass over each partition
// (§2.3.1), then derives global heavy hitters and occurrence bitmaps.
#ifndef PS3_STATS_STATS_BUILDER_H_
#define PS3_STATS_STATS_BUILDER_H_

#include <cstddef>
#include <vector>

#include "stats/table_stats.h"
#include "storage/table.h"

namespace ps3::runtime {
class WorkerPool;
}  // namespace ps3::runtime

namespace ps3::stats {

struct StatsOptions {
  int histogram_buckets = sketch::EquiDepthHistogram::kDefaultBuckets;
  int akmv_k = sketch::AkmvSketch::kDefaultK;
  double hh_support = 0.01;
  size_t exact_freq_max_distinct = sketch::ExactFrequencyTable::
      kDefaultMaxDistinct;
  /// Occurrence-bitmap capacity per column (paper caps k at 25).
  size_t bitmap_k = 25;
  /// Columns eligible for GROUP BY; only these get occurrence bitmaps.
  std::vector<size_t> grouping_columns;
  /// Worker threads for the per-partition sketch pass (0 = hardware).
  /// Partitions are independent, so any thread count builds identical
  /// statistics. Under concurrent admission this is also the build's lane
  /// cap on the shared pool.
  int num_threads = 0;
  /// Resident pool the sketch pass runs on; nullptr = the process-wide
  /// shared pool (e.g. a QueryScheduler's, so builds interleave fairly
  /// with in-flight queries).
  runtime::WorkerPool* pool = nullptr;
};

class StatsBuilder {
 public:
  explicit StatsBuilder(StatsOptions options) : options_(std::move(options)) {}

  /// Builds statistics for every partition of the table.
  TableStats Build(const storage::PartitionedTable& table) const;

 private:
  ColumnStats BuildColumn(const storage::Partition& part, size_t col) const;

  StatsOptions options_;
};

}  // namespace ps3::stats

#endif  // PS3_STATS_STATS_BUILDER_H_
