#include "stats/table_stats.h"

namespace ps3::stats {

size_t ColumnStats::MeasureBytes() const {
  return categorical ? 0 : measures.SerializedBytes();
}

size_t ColumnStats::HeavyHitterBytes() const {
  return heavy_hitters.SerializedBytes();
}

StorageReport TableStats::ComputeStorageReport() const {
  StorageReport report;
  if (partitions_.empty()) return report;
  double hist = 0, hh = 0, akmv = 0, measure = 0;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    for (size_t c = 0; c < partitions_[p].columns.size(); ++c) {
      const ColumnStats& cs = partitions_[p].columns[c];
      // The exact frequency table replaces fine-grained histogram buckets
      // for small-domain strings (§3.2), so it is accounted with the
      // histogram family; bitmaps are derived from heavy hitters.
      hist += static_cast<double>(cs.HistogramBytes() +
                                  cs.exact_freq.SerializedBytes());
      hh += static_cast<double>(cs.HeavyHitterBytes());
      if (!bitmaps_.empty() && !bitmaps_[p][c].empty()) {
        hh += static_cast<double>((bitmaps_[p][c].size() + 7) / 8);
      }
      akmv += static_cast<double>(cs.AkmvBytes());
      measure += static_cast<double>(cs.MeasureBytes());
    }
  }
  const double n = static_cast<double>(partitions_.size()) * 1024.0;
  report.histogram_kb = hist / n;
  report.heavy_hitter_kb = hh / n;
  report.akmv_kb = akmv / n;
  report.measure_kb = measure / n;
  report.total_kb = report.histogram_kb + report.heavy_hitter_kb +
                    report.akmv_kb + report.measure_kb;
  return report;
}

}  // namespace ps3::stats
