#include "cluster/kmeans.h"

#include <cassert>
#include <limits>

#include "common/math_util.h"

namespace ps3::cluster {

std::vector<std::vector<size_t>> Clustering::Members() const {
  std::vector<std::vector<size_t>> out(k);
  for (size_t i = 0; i < assignment.size(); ++i) {
    out[static_cast<size_t>(assignment[i])].push_back(i);
  }
  return out;
}

Clustering KMeans(const std::vector<std::vector<double>>& points, size_t k,
                  const KMeansParams& params) {
  const size_t n = points.size();
  assert(k >= 1 && k <= n);
  const size_t dim = points[0].size();
  RandomEngine rng(params.seed);

  // k-means++ seeding.
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(points[rng.NextUint64(n)]);
  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  while (centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = SquaredL2(points[i], centers.back());
      if (d < dist2[i]) dist2[i] = d;
      total += dist2[i];
    }
    size_t chosen;
    if (total <= 0.0) {
      // All remaining points coincide with centers; pick arbitrarily.
      chosen = rng.NextUint64(n);
    } else {
      double target = rng.NextDouble() * total;
      chosen = n - 1;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += dist2[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    }
    centers.push_back(points[chosen]);
  }

  Clustering result;
  result.k = k;
  result.assignment.assign(n, 0);
  std::vector<size_t> counts(k, 0);
  for (int iter = 0; iter < params.max_iters; ++iter) {
    bool changed = false;
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredL2(points[i], centers[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    // Update.
    for (auto& c : centers) c.assign(dim, 0.0);
    counts.assign(k, 0);
    for (size_t i = 0; i < n; ++i) {
      auto& c = centers[static_cast<size_t>(result.assignment[i])];
      for (size_t d = 0; d < dim; ++d) c[d] += points[i][d];
      ++counts[static_cast<size_t>(result.assignment[i])];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with a random point to keep all k
        // clusters non-empty (each cluster must produce one exemplar).
        size_t p = rng.NextUint64(n);
        centers[c] = points[p];
        changed = true;
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        centers[c][d] /= static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  // Final fix-up: guarantee non-empty clusters by stealing from the largest.
  counts.assign(k, 0);
  for (int a : result.assignment) ++counts[static_cast<size_t>(a)];
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) continue;
    size_t donor = 0;
    for (size_t d = 1; d < k; ++d) {
      if (counts[d] > counts[donor]) donor = d;
    }
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<size_t>(result.assignment[i]) == donor) {
        result.assignment[i] = static_cast<int>(c);
        --counts[donor];
        ++counts[c];
        break;
      }
    }
  }
  return result;
}

}  // namespace ps3::cluster
