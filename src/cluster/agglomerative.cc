#include "cluster/agglomerative.h"

#include <cassert>
#include <limits>

#include "common/math_util.h"

namespace ps3::cluster {

Clustering Agglomerative(const std::vector<std::vector<double>>& points,
                         size_t k, Linkage linkage) {
  const size_t n = points.size();
  assert(k >= 1 && k <= n);

  // Distance matrix. Ward works on squared Euclidean distances; single
  // linkage is monotone in either, so squared distances serve both.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = SquaredL2(points[i], points[j]);
      if (linkage == Linkage::kWard) d *= 0.5;  // Ward's initial d^2/2 form
      dist[i][j] = dist[j][i] = d;
    }
  }

  std::vector<bool> alive(n, true);
  std::vector<size_t> size(n, 1);
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);

  size_t clusters = n;
  while (clusters > k) {
    // Find the closest alive pair.
    double best = std::numeric_limits<double>::max();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi; Lance-Williams update of distances to bi.
    for (size_t h = 0; h < n; ++h) {
      if (!alive[h] || h == bi || h == bj) continue;
      double d_new;
      if (linkage == Linkage::kSingle) {
        d_new = std::min(dist[bi][h], dist[bj][h]);
      } else {
        double ni = static_cast<double>(size[bi]);
        double nj = static_cast<double>(size[bj]);
        double nh = static_cast<double>(size[h]);
        double denom = ni + nj + nh;
        d_new = ((ni + nh) * dist[bi][h] + (nj + nh) * dist[bj][h] -
                 nh * dist[bi][bj]) /
                denom;
      }
      dist[bi][h] = dist[h][bi] = d_new;
    }
    size[bi] += size[bj];
    alive[bj] = false;
    parent[bj] = static_cast<int>(bi);
    --clusters;
  }

  // Path-compress to alive roots and densify labels.
  auto find_root = [&parent](size_t x) {
    while (parent[x] != static_cast<int>(x)) {
      x = static_cast<size_t>(parent[x]);
    }
    return x;
  };
  std::vector<int> label(n, -1);
  Clustering result;
  result.k = k;
  result.assignment.resize(n);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t root = find_root(i);
    if (label[root] < 0) label[root] = next++;
    result.assignment[i] = label[root];
  }
  assert(static_cast<size_t>(next) == k);
  return result;
}

}  // namespace ps3::cluster
