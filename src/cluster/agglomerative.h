// Hierarchical agglomerative clustering with single and Ward linkage
// (Lance-Williams updates), compared against k-means in §5.5.5 / Table 6.
#ifndef PS3_CLUSTER_AGGLOMERATIVE_H_
#define PS3_CLUSTER_AGGLOMERATIVE_H_

#include <vector>

#include "cluster/kmeans.h"

namespace ps3::cluster {

enum class Linkage {
  kSingle,  ///< min pairwise distance between merged clusters
  kWard,    ///< minimum variance increase
};

/// Merges bottom-up until `k` clusters remain. O(n^2) memory, O(n^3) worst
/// case time — fine for the partition counts PS3 deals with.
Clustering Agglomerative(const std::vector<std::vector<double>>& points,
                         size_t k, Linkage linkage);

}  // namespace ps3::cluster

#endif  // PS3_CLUSTER_AGGLOMERATIVE_H_
