// Cluster exemplar selection (§4.2): the default (biased) estimator picks
// the member closest to the cluster's component-wise median feature vector;
// the unbiased variant (Appendix D) picks a uniformly random member.
#ifndef PS3_CLUSTER_EXEMPLAR_H_
#define PS3_CLUSTER_EXEMPLAR_H_

#include <vector>

#include "common/random.h"

namespace ps3::cluster {

/// Index (into `members`' values) of the member whose vector is closest to
/// the component-wise median of the cluster. `points` holds all points;
/// `members` the point indices in this cluster.
size_t MedianExemplar(const std::vector<std::vector<double>>& points,
                      const std::vector<size_t>& members);

/// Uniformly random member (unbiased estimator).
size_t RandomExemplar(const std::vector<size_t>& members, RandomEngine* rng);

}  // namespace ps3::cluster

#endif  // PS3_CLUSTER_EXEMPLAR_H_
