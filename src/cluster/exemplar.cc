#include "cluster/exemplar.h"

#include <cassert>
#include <limits>

#include "common/math_util.h"

namespace ps3::cluster {

size_t MedianExemplar(const std::vector<std::vector<double>>& points,
                      const std::vector<size_t>& members) {
  assert(!members.empty());
  std::vector<const std::vector<double>*> rows;
  rows.reserve(members.size());
  for (size_t m : members) rows.push_back(&points[m]);
  std::vector<double> median = ComponentwiseMedian(rows);
  double best = std::numeric_limits<double>::max();
  size_t best_m = members[0];
  for (size_t m : members) {
    double d = SquaredL2(points[m], median);
    if (d < best) {
      best = d;
      best_m = m;
    }
  }
  return best_m;
}

size_t RandomExemplar(const std::vector<size_t>& members, RandomEngine* rng) {
  assert(!members.empty());
  return members[rng->NextUint64(members.size())];
}

}  // namespace ps3::cluster
