// Lloyd's k-means with k-means++ initialization, used by PS3's
// sample-via-clustering step (§4.2).
#ifndef PS3_CLUSTER_KMEANS_H_
#define PS3_CLUSTER_KMEANS_H_

#include <vector>

#include "common/random.h"

namespace ps3::cluster {

/// Cluster assignment for each input point; `k` clusters, every cluster
/// non-empty (guaranteed by the implementations when k <= #points).
struct Clustering {
  std::vector<int> assignment;
  size_t k = 0;

  std::vector<std::vector<size_t>> Members() const;
};

struct KMeansParams {
  int max_iters = 25;
  uint64_t seed = 17;
};

/// `points`: n rows of equal dimension. Requires 1 <= k <= n.
Clustering KMeans(const std::vector<std::vector<double>>& points, size_t k,
                  const KMeansParams& params = {});

}  // namespace ps3::cluster

#endif  // PS3_CLUSTER_KMEANS_H_
