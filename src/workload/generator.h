// Random query generation (§5.1.2): 0-N group-by columns, 0-5 predicate
// clauses (random column / operator / constant), 1-3 aggregates. Constants
// are drawn from the data distribution so selectivities span (0, 1).
#ifndef PS3_WORKLOAD_GENERATOR_H_
#define PS3_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "query/query.h"
#include "workload/spec.h"

namespace ps3::workload {

struct GeneratorOptions {
  double p_no_groupby = 0.25;
  int max_groupby_cols = 3;
  int max_clauses = 5;
  int max_aggregates = 3;
  double p_or_tree = 0.2;       ///< predicate is a disjunction
  double p_negate_clause = 0.1; ///< wrap a clause in NOT
  /// Values per numeric column retained as the constant pool.
  size_t value_pool = 512;
  /// Cap on the estimated group count of a GROUP BY columnset (product of
  /// per-column distinct counts). The paper's scope excludes group-bys
  /// with large cardinality (§2.2, "moderate distinctiveness").
  size_t max_group_cardinality = 200;
};

class QueryGenerator {
 public:
  QueryGenerator(const storage::Table* table, const WorkloadSpec& spec,
                 GeneratorOptions options = {});

  /// One random query from the workload distribution.
  query::Query Generate(RandomEngine* rng) const;

  /// `n` distinct queries (dedup by rendered SQL); skips queries whose
  /// exact answer would be empty-predicate-degenerate only if impossible.
  std::vector<query::Query> GenerateSet(size_t n, uint64_t seed) const;

 private:
  query::PredicatePtr GenerateClause(RandomEngine* rng) const;
  query::Aggregate GenerateAggregate(RandomEngine* rng) const;

  const storage::Table* table_;
  GeneratorOptions options_;

  std::vector<size_t> groupby_cols_;
  std::vector<size_t> groupby_cardinality_;  // distinct count per column
  struct PredCol {
    size_t column;
    bool categorical;
    std::vector<double> numeric_pool;  // sorted sample of values
    std::vector<int32_t> code_pool;    // sample of codes (freq-weighted)
  };
  std::vector<PredCol> pred_cols_;
  std::vector<AggregateSpec> agg_specs_;
};

/// Resolves an AggregateSpec against a table schema.
query::Aggregate ResolveAggregate(const storage::Table& table,
                                  const AggregateSpec& spec);

}  // namespace ps3::workload

#endif  // PS3_WORKLOAD_GENERATOR_H_
