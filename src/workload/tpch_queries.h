// Analogues of the 10 TPC-H benchmark queries the paper's generalization
// test uses (§5.5.4: Q1,5,6,7,8,9,12,14,17,18,19), rewritten over the
// denormalized TPC-H* schema of MakeTpchStar. Each template can be
// instantiated with random parameters (the paper generates 20 random test
// queries per template).
#ifndef PS3_WORKLOAD_TPCH_QUERIES_H_
#define PS3_WORKLOAD_TPCH_QUERIES_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "query/query.h"
#include "storage/table.h"

namespace ps3::workload {

/// Template ids supported by the generalization test.
inline constexpr int kTpchTemplates[] = {1, 5, 6, 7, 8, 9, 12, 14, 17, 18, 19};

/// One random instantiation of template `q` (1, 5, 6, ...) against the
/// TPC-H* table. Errors on unknown template ids.
Result<query::Query> MakeTpchQuery(const storage::Table& table, int q,
                                   RandomEngine* rng);

/// `count` random instantiations of a template.
std::vector<query::Query> MakeTpchQuerySet(const storage::Table& table, int q,
                                           size_t count, uint64_t seed);

}  // namespace ps3::workload

#endif  // PS3_WORKLOAD_TPCH_QUERIES_H_
