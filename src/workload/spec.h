// Workload specification (§2.3.2): the aggregate expressions, group-by
// columns and predicate columns a workload draws from. PS3 assumes this
// spec is known a priori; concrete predicates are sampled at random.
#ifndef PS3_WORKLOAD_SPEC_H_
#define PS3_WORKLOAD_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace ps3::workload {

/// A SELECT-list aggregate candidate, expressed over column names so specs
/// stay schema-independent until resolved.
struct AggregateSpec {
  enum class Kind { kCount, kSum, kAvg, kSumProduct, kSumMargin };
  Kind kind = Kind::kSum;
  std::string column_a;  ///< unused for kCount
  std::string column_b;  ///< kSumProduct: a*b; kSumMargin: a*(1-b)
};

struct WorkloadSpec {
  /// Columns eligible for GROUP BY (moderate cardinality, §2.2).
  std::vector<std::string> groupby_columns;
  /// Columns predicates may filter on.
  std::vector<std::string> predicate_columns;
  /// Aggregate candidates.
  std::vector<AggregateSpec> aggregates;
};

/// A generated dataset: the table in ingest order, its conventional layout
/// (sort columns), and the workload spec used to sample queries.
struct DatasetBundle {
  std::string name;
  std::shared_ptr<storage::Table> table;
  std::vector<std::string> default_sort;
  WorkloadSpec spec;
};

}  // namespace ps3::workload

#endif  // PS3_WORKLOAD_SPEC_H_
