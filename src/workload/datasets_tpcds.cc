#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "workload/datasets.h"

namespace ps3::workload {

namespace {

using storage::ColumnType;
using storage::Schema;
using storage::Table;

constexpr int kCategories = 10;
constexpr int kBrandsPerCategory = 4;
constexpr int kClasses = 20;
constexpr int kPromos = 30;

const char* kMarital[5] = {"S", "M", "D", "W", "U"};
const char* kEducation[7] = {"Primary",   "Secondary", "College",
                             "2 yr Degree", "4 yr Degree", "Advanced",
                             "Unknown"};

}  // namespace

DatasetBundle MakeTpcdsStar(size_t rows, uint64_t seed) {
  Schema schema({
      {"cs_quantity", ColumnType::kNumeric},
      {"cs_wholesale_cost", ColumnType::kNumeric},
      {"cs_list_price", ColumnType::kNumeric},
      {"cs_sales_price", ColumnType::kNumeric},
      {"cs_ext_discount_amt", ColumnType::kNumeric},
      {"cs_net_profit", ColumnType::kNumeric},
      {"i_current_price", ColumnType::kNumeric},
      {"d_year", ColumnType::kNumeric},
      {"d_moy", ColumnType::kNumeric},
      {"d_dom", ColumnType::kNumeric},
      {"i_category", ColumnType::kCategorical},
      {"i_brand", ColumnType::kCategorical},
      {"i_class", ColumnType::kCategorical},
      {"p_promo_sk", ColumnType::kCategorical},
      {"p_channel_email", ColumnType::kCategorical},
      {"cd_gender", ColumnType::kCategorical},
      {"cd_marital_status", ColumnType::kCategorical},
      {"cd_education_status", ColumnType::kCategorical},
      {"d_day_name", ColumnType::kCategorical},
  });
  auto table = std::make_shared<Table>(schema);

  RandomEngine rng(seed);
  ZipfSampler item_zipf(1000, 0.8);
  const char* day_names[7] = {"Sunday",   "Monday", "Tuesday", "Wednesday",
                              "Thursday", "Friday", "Saturday"};

  for (size_t i = 0; i < rows; ++i) {
    size_t item = item_zipf.Sample(&rng);
    int category = static_cast<int>((item * 31) % kCategories);
    int brand = category * kBrandsPerCategory +
                static_cast<int>((item * 17) % kBrandsPerCategory);
    int klass = static_cast<int>((item * 131) % kClasses);

    // Sales are spread over 3 years; promotions run in contiguous windows,
    // so a p_promo_sk-sorted layout clusters time and prices together
    // (Figure 6's "less uniform" layout).
    double year = 1999.0 + static_cast<double>(rng.NextUint64(3));
    double moy = 1.0 + static_cast<double>(rng.NextUint64(12));
    double dom = 1.0 + static_cast<double>(rng.NextUint64(28));
    double time_pos = ((year - 1999.0) * 12.0 + (moy - 1.0)) / 36.0;
    int promo = static_cast<int>(time_pos * kPromos) % kPromos;
    if (rng.NextBool(0.2)) promo = static_cast<int>(rng.NextUint64(kPromos));

    double quantity = 1.0 + static_cast<double>(rng.NextUint64(100));
    double wholesale = 5.0 + static_cast<double>((item * 7) % 95);
    double list_price = wholesale * (1.3 + 0.7 * rng.NextDouble());
    double discount_frac =
        promo % 5 == 0 ? 0.3 * rng.NextDouble() : 0.1 * rng.NextDouble();
    double sales_price = list_price * (1.0 - discount_frac);
    double ext_discount = (list_price - sales_price) * quantity;
    // Net profit roughly uniform across the population -> the
    // cs_net_profit-sorted layout is the "more uniform" one in Figure 6.
    double net_profit = (sales_price - wholesale) * quantity -
                        20.0 * rng.NextDouble();

    table->AppendRow(
        {quantity, wholesale, list_price, sales_price, ext_discount,
         net_profit, list_price * (0.9 + 0.2 * rng.NextDouble()), year, moy,
         dom},
        {StrFormat("Category_%d", category), StrFormat("Brand_%d", brand),
         StrFormat("Class_%d", klass), StrFormat("Promo_%d", promo),
         rng.NextBool(0.5) ? "Y" : "N", rng.NextBool(0.5) ? "M" : "F",
         kMarital[rng.NextUint64(5)], kEducation[rng.NextUint64(7)],
         day_names[rng.NextUint64(7)]});
  }
  table->Seal();

  DatasetBundle bundle;
  bundle.name = "tpcds";
  bundle.table = std::move(table);
  bundle.default_sort = {"d_year", "d_moy", "d_dom"};
  bundle.spec.groupby_columns = {
      "i_category", "i_brand",          "cd_gender", "cd_marital_status",
      "cd_education_status", "d_year",  "d_moy",     "p_promo_sk",
      "d_day_name",
  };
  bundle.spec.predicate_columns = {
      "cs_quantity",   "cs_list_price", "cs_sales_price", "cs_net_profit",
      "d_year",        "d_moy",         "i_current_price", "i_category",
      "i_brand",       "p_promo_sk",    "cd_gender",       "cd_marital_status",
      "cd_education_status",
  };
  using K = AggregateSpec::Kind;
  bundle.spec.aggregates = {
      {K::kCount, "", ""},
      {K::kSum, "cs_quantity", ""},
      {K::kSum, "cs_net_profit", ""},
      {K::kSum, "cs_sales_price", ""},
      {K::kAvg, "cs_list_price", ""},
      {K::kAvg, "cs_net_profit", ""},
      {K::kSumProduct, "cs_quantity", "cs_sales_price"},
  };
  return bundle;
}

}  // namespace ps3::workload
