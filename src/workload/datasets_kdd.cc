#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "workload/datasets.h"

namespace ps3::workload {

namespace {

using storage::ColumnType;
using storage::Schema;
using storage::Table;

constexpr int kServices = 60;

// Attack mix inspired by KDD Cup'99: dominated by smurf/neptune floods,
// with a long tail of rare attack classes and ~20% normal traffic.
struct AttackProfile {
  const char* label;
  double probability;
  double count_scale;    // connections-per-window scale
  double bytes_scale;    // src_bytes scale
  int service_mod;       // attacks concentrate on few services
  const char* flag;
};
const AttackProfile kProfiles[] = {
    {"smurf", 0.35, 400.0, 1000.0, 3, "SF"},
    {"neptune", 0.30, 200.0, 0.0, 5, "S0"},
    {"normal", 0.20, 20.0, 3000.0, kServices, "SF"},
    {"back", 0.05, 10.0, 50000.0, 2, "SF"},
    {"satan", 0.04, 100.0, 10.0, 11, "REJ"},
    {"ipsweep", 0.03, 50.0, 10.0, 13, "SF"},
    {"portsweep", 0.02, 60.0, 10.0, 17, "REJ"},
    {"teardrop", 0.006, 30.0, 100.0, 1, "SF"},
    {"pod", 0.002, 10.0, 500.0, 1, "SF"},
    {"guess_passwd", 0.001, 2.0, 200.0, 1, "RSTO"},
    {"buffer_overflow", 0.001, 1.0, 1500.0, 2, "SF"},
};

}  // namespace

DatasetBundle MakeKdd(size_t rows, uint64_t seed) {
  Schema schema({
      {"duration", ColumnType::kNumeric},
      {"src_bytes", ColumnType::kNumeric},
      {"dst_bytes", ColumnType::kNumeric},
      {"count", ColumnType::kNumeric},
      {"srv_count", ColumnType::kNumeric},
      {"serror_rate", ColumnType::kNumeric},
      {"rerror_rate", ColumnType::kNumeric},
      {"same_srv_rate", ColumnType::kNumeric},
      {"diff_srv_rate", ColumnType::kNumeric},
      {"hot", ColumnType::kNumeric},
      {"num_failed_logins", ColumnType::kNumeric},
      {"wrong_fragment", ColumnType::kNumeric},
      {"protocol_type", ColumnType::kCategorical},
      {"service", ColumnType::kCategorical},
      {"flag", ColumnType::kCategorical},
      {"label", ColumnType::kCategorical},
      {"land", ColumnType::kCategorical},
      {"logged_in", ColumnType::kCategorical},
  });
  auto table = std::make_shared<Table>(schema);

  RandomEngine rng(seed);
  double cum[std::size(kProfiles)];
  double acc = 0.0;
  for (size_t i = 0; i < std::size(kProfiles); ++i) {
    acc += kProfiles[i].probability;
    cum[i] = acc;
  }

  for (size_t i = 0; i < rows; ++i) {
    double u = rng.NextDouble() * acc;
    size_t pi = 0;
    while (pi + 1 < std::size(kProfiles) && cum[pi] < u) ++pi;
    const AttackProfile& prof = kProfiles[pi];

    bool is_normal = std::string_view(prof.label) == "normal";
    double count = std::floor(prof.count_scale * (0.5 + rng.NextDouble()));
    double srv_count = std::floor(count * (0.5 + 0.5 * rng.NextDouble()));
    double src_bytes =
        prof.bytes_scale > 0.0
            ? std::floor(rng.NextExponential(1.0 / prof.bytes_scale))
            : 0.0;
    double dst_bytes =
        is_normal ? std::floor(rng.NextExponential(1.0 / 2000.0)) : 0.0;
    double serror = prof.flag[0] == 'S' && prof.flag[1] == '0'
                        ? 0.9 + 0.1 * rng.NextDouble()
                        : 0.05 * rng.NextDouble();
    double rerror = std::string_view(prof.flag) == "REJ"
                        ? 0.8 + 0.2 * rng.NextDouble()
                        : 0.05 * rng.NextDouble();
    int service = prof.service_mod >= kServices
                      ? static_cast<int>(rng.NextUint64(kServices))
                      : static_cast<int>(rng.NextUint64(
                            static_cast<uint64_t>(prof.service_mod)));

    table->AppendRow(
        {is_normal ? std::floor(rng.NextExponential(0.01)) : 0.0, src_bytes,
         dst_bytes, count, srv_count, serror, rerror,
         0.5 + 0.5 * rng.NextDouble(), 0.5 * rng.NextDouble(),
         is_normal && rng.NextBool(0.05) ? 1.0 : 0.0,
         rng.NextBool(0.002) ? 1.0 + double(rng.NextUint64(4)) : 0.0,
         std::string_view(prof.label) == "teardrop" ? 1.0 : 0.0},
        {pi % 3 == 0 ? "icmp" : (pi % 3 == 1 ? "tcp" : "udp"),
         StrFormat("service_%d", service), prof.flag, prof.label,
         rng.NextBool(0.001) ? "1" : "0",
         is_normal && rng.NextBool(0.7) ? "1" : "0"});
  }
  table->Seal();

  DatasetBundle bundle;
  bundle.name = "kdd";
  bundle.table = std::move(table);
  bundle.default_sort = {"count"};
  bundle.spec.groupby_columns = {
      "protocol_type", "service", "flag", "label", "logged_in",
  };
  bundle.spec.predicate_columns = {
      "duration",  "src_bytes", "dst_bytes",    "count",
      "srv_count", "serror_rate", "rerror_rate", "same_srv_rate",
      "protocol_type", "service", "flag",        "label",
  };
  using K = AggregateSpec::Kind;
  bundle.spec.aggregates = {
      {K::kCount, "", ""},
      {K::kSum, "src_bytes", ""},
      {K::kSum, "dst_bytes", ""},
      {K::kSum, "count", ""},
      {K::kAvg, "duration", ""},
      {K::kAvg, "serror_rate", ""},
  };
  return bundle;
}

Result<DatasetBundle> MakeDataset(const std::string& name, size_t rows,
                                  uint64_t seed) {
  if (name == "tpch") return MakeTpchStar(rows, seed);
  if (name == "tpcds") return MakeTpcdsStar(rows, seed);
  if (name == "aria") return MakeAria(rows, seed);
  if (name == "kdd") return MakeKdd(rows, seed);
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace ps3::workload
