#include "workload/tpch_queries.h"

#include <cassert>

#include "common/string_util.h"

namespace ps3::workload {

namespace {

using query::Aggregate;
using query::CompareOp;
using query::Expr;
using query::ExprPtr;
using query::Predicate;
using query::PredicatePtr;
using query::Query;

constexpr double kBaseDate = 8035;
constexpr double kDateSpan = 7.0 * 365.0;

/// Helper bound to one table: resolves names and builds common fragments.
class TpchBuilder {
 public:
  TpchBuilder(const storage::Table& table, RandomEngine* rng)
      : table_(table), rng_(rng) {}

  size_t Col(const char* name) const {
    int idx = table_.schema().FindColumn(name);
    assert(idx >= 0);
    return static_cast<size_t>(idx);
  }
  ExprPtr ColE(const char* name) const { return Expr::Column(Col(name)); }

  /// extendedprice * (1 - discount)
  ExprPtr Revenue() const {
    return Expr::Mul(ColE("l_extendedprice"),
                     Expr::Sub(Expr::Const(1.0), ColE("l_discount")));
  }

  double RandomDate(double lo_frac, double hi_frac) const {
    return kBaseDate +
           kDateSpan * (lo_frac + (hi_frac - lo_frac) * rng_->NextDouble());
  }

  /// [date, date + days) range on a date column.
  PredicatePtr DateRange(const char* col, double start, double days) const {
    return Predicate::And(
        {Predicate::NumericCompare(Col(col), CompareOp::kGe, start),
         Predicate::NumericCompare(Col(col), CompareOp::kLt, start + days)});
  }

  /// Random code of a categorical column drawn from the data.
  int32_t RandomCode(const char* col) const {
    const auto& column = table_.column(Col(col));
    return column.CodeAt(rng_->NextUint64(column.size()));
  }

  PredicatePtr CatEq(const char* col, int32_t code) const {
    return Predicate::CategoricalIn(Col(col), {code});
  }

  const storage::Table& table_;
  RandomEngine* rng_;
};

Query MakeQ1(const TpchBuilder& b) {
  // Pricing summary report: 8 aggregates grouped by returnflag/linestatus,
  // shipdate <= cutoff near the end of the horizon.
  Query q;
  q.aggregates = {
      Aggregate::Sum(b.ColE("l_quantity"), "sum_qty"),
      Aggregate::Sum(b.ColE("l_extendedprice"), "sum_base_price"),
      Aggregate::Sum(b.Revenue(), "sum_disc_price"),
      Aggregate::Sum(Expr::Mul(b.Revenue(),
                               Expr::Add(Expr::Const(1.0), b.ColE("l_tax"))),
                     "sum_charge"),
      Aggregate::Avg(b.ColE("l_quantity"), "avg_qty"),
      Aggregate::Avg(b.ColE("l_extendedprice"), "avg_price"),
      Aggregate::Avg(b.ColE("l_discount"), "avg_disc"),
      Aggregate::Count("count_order"),
  };
  q.predicate = Predicate::NumericCompare(b.Col("l_shipdate"), CompareOp::kLe,
                                          b.RandomDate(0.85, 1.0));
  q.group_by = {b.Col("l_returnflag"), b.Col("l_linestatus")};
  return q;
}

Query MakeQ5(const TpchBuilder& b) {
  // Local supplier volume: revenue by customer nation within a region and
  // a one-year window.
  Query q;
  q.aggregates = {Aggregate::Sum(b.Revenue(), "revenue")};
  q.predicate = Predicate::And(
      {b.CatEq("r1_name", b.RandomCode("r1_name")),
       b.DateRange("l_shipdate", b.RandomDate(0.0, 0.8), 365.0)});
  q.group_by = {b.Col("n1_name")};
  return q;
}

Query MakeQ6(const TpchBuilder& b) {
  // Forecasting revenue change: narrow discount band + quantity cap.
  Query q;
  q.aggregates = {Aggregate::Sum(
      Expr::Mul(b.ColE("l_extendedprice"), b.ColE("l_discount")),
      "revenue")};
  double disc = 0.02 + 0.01 * static_cast<double>(b.rng_->NextUint64(6));
  q.predicate = Predicate::And(
      {b.DateRange("l_shipdate", b.RandomDate(0.0, 0.8), 365.0),
       Predicate::NumericCompare(b.Col("l_discount"), CompareOp::kGe,
                                 disc - 0.011),
       Predicate::NumericCompare(b.Col("l_discount"), CompareOp::kLe,
                                 disc + 0.011),
       Predicate::NumericCompare(b.Col("l_quantity"), CompareOp::kLt,
                                 24.0 + double(b.rng_->NextUint64(10)))});
  return q;
}

Query MakeQ7(const TpchBuilder& b) {
  // Volume shipping between two nations, grouped by year.
  Query q;
  int32_t n1 = b.RandomCode("n1_name");
  int32_t n2 = b.RandomCode("n2_name");
  q.aggregates = {Aggregate::Sum(b.Revenue(), "revenue")};
  q.predicate = Predicate::Or(
      {Predicate::And({b.CatEq("n1_name", n1), b.CatEq("n2_name", n2)}),
       Predicate::And({b.CatEq("n1_name", n2), b.CatEq("n2_name", n1)})});
  q.group_by = {b.Col("n1_name"), b.Col("n2_name"), b.Col("l_year")};
  return q;
}

Query MakeQ8(const TpchBuilder& b) {
  // National market share: CASE rewritten as a filtered aggregate over the
  // same predicate (§5.5.4 / Appendix C.3).
  Query q;
  int32_t nation = b.RandomCode("n2_name");
  q.aggregates = {
      Aggregate::SumCase(b.Revenue(), b.CatEq("n2_name", nation),
                         "nation_volume"),
      Aggregate::Sum(b.Revenue(), "total_volume"),
  };
  q.predicate = Predicate::And(
      {b.CatEq("r2_name", b.RandomCode("r2_name")),
       b.DateRange("l_shipdate", b.RandomDate(0.1, 0.5), 2.0 * 365.0)});
  q.group_by = {b.Col("o_year")};
  return q;
}

Query MakeQ9(const TpchBuilder& b) {
  // Product type profit: margin grouped by supplier nation and year,
  // restricted to a brand subset (stand-in for p_name LIKE).
  Query q;
  ExprPtr profit = Expr::Sub(
      b.Revenue(), Expr::Mul(b.ColE("ps_supplycost"), b.ColE("l_quantity")));
  q.aggregates = {Aggregate::Sum(profit, "sum_profit")};
  q.predicate = Predicate::CategoricalIn(
      b.Col("p_brand"),
      {b.RandomCode("p_brand"), b.RandomCode("p_brand"),
       b.RandomCode("p_brand")});
  q.group_by = {b.Col("n2_name"), b.Col("o_year")};
  return q;
}

Query MakeQ12(const TpchBuilder& b) {
  // Shipping modes and order priority: two CASE counts by shipmode.
  Query q;
  size_t prio_col = b.Col("o_orderpriority");
  const auto& dict = *b.table_.column(prio_col).dict();
  int32_t urgent = dict.Find("1-URGENT");
  int32_t high = dict.Find("2-HIGH");
  std::vector<int32_t> high_codes;
  if (urgent >= 0) high_codes.push_back(urgent);
  if (high >= 0) high_codes.push_back(high);
  PredicatePtr is_high = Predicate::CategoricalIn(prio_col, high_codes);
  q.aggregates = {
      Aggregate{query::AggFunc::kCount, nullptr, is_high, "high_line_count"},
      Aggregate{query::AggFunc::kCount, nullptr, Predicate::Not(is_high),
                "low_line_count"},
  };
  q.predicate = Predicate::And(
      {Predicate::CategoricalIn(
           b.Col("l_shipmode"),
           {b.RandomCode("l_shipmode"), b.RandomCode("l_shipmode")}),
       b.DateRange("l_receiptdate", b.RandomDate(0.0, 0.8), 365.0)});
  q.group_by = {b.Col("l_shipmode")};
  return q;
}

Query MakeQ14(const TpchBuilder& b) {
  // Promotion effect: revenue from a "promo" type subset vs total, over
  // one month.
  Query q;
  q.aggregates = {
      Aggregate::SumCase(
          b.Revenue(),
          Predicate::CategoricalIn(b.Col("p_type"),
                                   {b.RandomCode("p_type"),
                                    b.RandomCode("p_type"),
                                    b.RandomCode("p_type")}),
          "promo_revenue"),
      Aggregate::Sum(b.Revenue(), "total_revenue"),
  };
  q.predicate = b.DateRange("l_shipdate", b.RandomDate(0.0, 0.9), 30.0);
  return q;
}

Query MakeQ17(const TpchBuilder& b) {
  // Small-quantity-order revenue for one brand/container combination.
  Query q;
  q.aggregates = {Aggregate::Sum(b.ColE("l_extendedprice"), "avg_yearly")};
  q.predicate = Predicate::And(
      {b.CatEq("p_brand", b.RandomCode("p_brand")),
       b.CatEq("p_container", b.RandomCode("p_container")),
       Predicate::NumericCompare(b.Col("l_quantity"), CompareOp::kLt,
                                 2.0 + double(b.rng_->NextUint64(5)))});
  return q;
}

Query MakeQ18(const TpchBuilder& b) {
  // Large volume customers (flattened): quantity totals of expensive
  // orders by priority. The price threshold is a high data quantile so
  // the template stays non-empty at any generator scale.
  Query q;
  q.aggregates = {Aggregate::Sum(b.ColE("l_quantity"), "sum_qty"),
                  Aggregate::Count("order_count")};
  const auto& price = b.table_.column(b.Col("o_totalprice"));
  double threshold = 0.0;
  for (int probe = 0; probe < 64; ++probe) {
    threshold = std::max(threshold,
                         price.NumericAt(b.rng_->NextUint64(price.size())));
  }
  threshold *= 0.6 + 0.3 * b.rng_->NextDouble();
  q.predicate = Predicate::NumericCompare(b.Col("o_totalprice"),
                                          CompareOp::kGt, threshold);
  q.group_by = {b.Col("o_orderpriority")};
  return q;
}

Query MakeQ19(const TpchBuilder& b) {
  // Discounted revenue: disjunction of three conjunctive branches; with 21
  // leaf clauses this exercises the complex-predicate fallback (B.1).
  Query q;
  q.aggregates = {Aggregate::Sum(b.Revenue(), "revenue")};
  std::vector<PredicatePtr> branches;
  for (int branch = 0; branch < 3; ++branch) {
    double qty_lo = 1.0 + 10.0 * branch + double(b.rng_->NextUint64(10));
    branches.push_back(Predicate::And({
        b.CatEq("p_brand", b.RandomCode("p_brand")),
        Predicate::CategoricalIn(b.Col("p_container"),
                                 {b.RandomCode("p_container"),
                                  b.RandomCode("p_container"),
                                  b.RandomCode("p_container")}),
        Predicate::NumericCompare(b.Col("l_quantity"), CompareOp::kGe,
                                  qty_lo),
        Predicate::NumericCompare(b.Col("l_quantity"), CompareOp::kLe,
                                  qty_lo + 10.0),
        Predicate::NumericCompare(b.Col("p_size"), CompareOp::kGe, 1.0),
        Predicate::NumericCompare(b.Col("p_size"), CompareOp::kLe,
                                  5.0 + 5.0 * branch),
        Predicate::CategoricalIn(b.Col("l_shipmode"),
                                 {b.RandomCode("l_shipmode"),
                                  b.RandomCode("l_shipmode")}),
    }));
  }
  q.predicate = Predicate::Or(std::move(branches));
  return q;
}

}  // namespace

Result<query::Query> MakeTpchQuery(const storage::Table& table, int q,
                                   RandomEngine* rng) {
  TpchBuilder b(table, rng);
  switch (q) {
    case 1:
      return MakeQ1(b);
    case 5:
      return MakeQ5(b);
    case 6:
      return MakeQ6(b);
    case 7:
      return MakeQ7(b);
    case 8:
      return MakeQ8(b);
    case 9:
      return MakeQ9(b);
    case 12:
      return MakeQ12(b);
    case 14:
      return MakeQ14(b);
    case 17:
      return MakeQ17(b);
    case 18:
      return MakeQ18(b);
    case 19:
      return MakeQ19(b);
    default:
      return Status::NotFound(
          StrFormat("TPC-H template Q%d is not in the supported set", q));
  }
}

std::vector<query::Query> MakeTpchQuerySet(const storage::Table& table, int q,
                                           size_t count, uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<query::Query> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto made = MakeTpchQuery(table, q, &rng);
    assert(made.ok());
    out.push_back(std::move(made).value());
  }
  return out;
}

}  // namespace ps3::workload
