// Synthetic stand-ins for the paper's four evaluation datasets (§5.1.1).
// Scales are configurable; correlations are engineered so that sort-order
// layouts carry real signal (dates vs prices, tenants vs versions, attack
// types vs services, ...), which is what PS3's evaluation depends on.
#ifndef PS3_WORKLOAD_DATASETS_H_
#define PS3_WORKLOAD_DATASETS_H_

#include <string>

#include "common/status.h"
#include "workload/spec.h"

namespace ps3::workload {

/// TPC-H* analog: denormalized lineitem with Zipf(1) skew, default layout
/// sorted by l_shipdate.
DatasetBundle MakeTpchStar(size_t rows, uint64_t seed);

/// TPC-DS* analog: catalog_sales joined with item/date/promotion/customer
/// demographics, default layout sorted by (d_year, d_moy, d_dom).
DatasetBundle MakeTpcdsStar(size_t rows, uint64_t seed);

/// Aria analog: production service request log; AppInfo_Version has 167
/// distinct values with the most popular covering ~half the rows; default
/// layout sorted by TenantId.
DatasetBundle MakeAria(size_t rows, uint64_t seed);

/// KDD Cup'99 analog: network intrusion log with many binary columns;
/// default layout sorted by numeric `count`.
DatasetBundle MakeKdd(size_t rows, uint64_t seed);

/// Dispatch by name: "tpch", "tpcds", "aria", "kdd".
Result<DatasetBundle> MakeDataset(const std::string& name, size_t rows,
                                  uint64_t seed);

}  // namespace ps3::workload

#endif  // PS3_WORKLOAD_DATASETS_H_
