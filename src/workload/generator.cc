#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_set>

#include "common/string_util.h"

namespace ps3::workload {

using query::Aggregate;
using query::CompareOp;
using query::Expr;
using query::Predicate;
using query::PredicatePtr;
using query::Query;

query::Aggregate ResolveAggregate(const storage::Table& table,
                                  const AggregateSpec& spec) {
  const auto& schema = table.schema();
  auto col = [&](const std::string& name) {
    int idx = schema.FindColumn(name);
    assert(idx >= 0);
    return Expr::Column(static_cast<size_t>(idx));
  };
  switch (spec.kind) {
    case AggregateSpec::Kind::kCount:
      return Aggregate::Count();
    case AggregateSpec::Kind::kSum:
      return Aggregate::Sum(col(spec.column_a), "sum_" + spec.column_a);
    case AggregateSpec::Kind::kAvg:
      return Aggregate::Avg(col(spec.column_a), "avg_" + spec.column_a);
    case AggregateSpec::Kind::kSumProduct:
      return Aggregate::Sum(Expr::Mul(col(spec.column_a), col(spec.column_b)),
                            "sum_" + spec.column_a + "_x_" + spec.column_b);
    case AggregateSpec::Kind::kSumMargin:
      return Aggregate::Sum(
          Expr::Mul(col(spec.column_a),
                    Expr::Sub(Expr::Const(1.0), col(spec.column_b))),
          "sum_" + spec.column_a + "_margin_" + spec.column_b);
  }
  return Aggregate::Count();
}

QueryGenerator::QueryGenerator(const storage::Table* table,
                               const WorkloadSpec& spec,
                               GeneratorOptions options)
    : table_(table), options_(options), agg_specs_(spec.aggregates) {
  const auto& schema = table->schema();
  for (const auto& name : spec.groupby_columns) {
    int idx = schema.FindColumn(name);
    assert(idx >= 0);
    size_t col = static_cast<size_t>(idx);
    groupby_cols_.push_back(col);
    // Distinct count, used to keep sampled group-by sets within the
    // paper's moderate-cardinality scope.
    const auto& column = table->column(col);
    if (column.is_numeric()) {
      std::set<double> distinct;
      for (size_t r = 0; r < column.size(); ++r) {
        distinct.insert(column.NumericAt(r));
      }
      groupby_cardinality_.push_back(distinct.size());
    } else {
      groupby_cardinality_.push_back(column.dict()->size());
    }
  }
  RandomEngine rng(0xFEEDBEEF);
  for (const auto& name : spec.predicate_columns) {
    int idx = schema.FindColumn(name);
    assert(idx >= 0);
    PredCol pc;
    pc.column = static_cast<size_t>(idx);
    pc.categorical = schema.IsCategorical(pc.column);
    const auto& column = table->column(pc.column);
    const size_t n = column.size();
    const size_t pool = std::min(options_.value_pool, n);
    if (pc.categorical) {
      // Frequency-weighted code pool: popular values appear more often,
      // giving a realistic mix of selective and non-selective clauses.
      pc.code_pool.reserve(pool);
      for (size_t i = 0; i < pool; ++i) {
        pc.code_pool.push_back(column.CodeAt(rng.NextUint64(n)));
      }
    } else {
      pc.numeric_pool.reserve(pool);
      for (size_t i = 0; i < pool; ++i) {
        pc.numeric_pool.push_back(column.NumericAt(rng.NextUint64(n)));
      }
      std::sort(pc.numeric_pool.begin(), pc.numeric_pool.end());
    }
    pred_cols_.push_back(std::move(pc));
  }
}

PredicatePtr QueryGenerator::GenerateClause(RandomEngine* rng) const {
  const PredCol& pc = pred_cols_[rng->NextUint64(pred_cols_.size())];
  PredicatePtr clause;
  if (pc.categorical) {
    // Equality or small IN set.
    size_t n_vals = 1 + rng->NextUint64(3);
    std::set<int32_t> codes;
    for (size_t i = 0; i < n_vals; ++i) {
      codes.insert(pc.code_pool[rng->NextUint64(pc.code_pool.size())]);
    }
    clause = Predicate::CategoricalIn(
        pc.column, {codes.begin(), codes.end()});
  } else {
    static constexpr CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                         CompareOp::kGt, CompareOp::kGe};
    CompareOp op = kOps[rng->NextUint64(4)];
    // Quantile in [0.05, 0.95] so clauses are neither trivial nor empty.
    double q = 0.05 + 0.9 * rng->NextDouble();
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(pc.numeric_pool.size() - 1));
    clause = Predicate::NumericCompare(pc.column, op, pc.numeric_pool[idx]);
  }
  if (rng->NextBool(options_.p_negate_clause)) {
    clause = Predicate::Not(clause);
  }
  return clause;
}

Aggregate QueryGenerator::GenerateAggregate(RandomEngine* rng) const {
  const AggregateSpec& spec =
      agg_specs_[rng->NextUint64(agg_specs_.size())];
  return ResolveAggregate(*table_, spec);
}

Query QueryGenerator::Generate(RandomEngine* rng) const {
  Query q;
  // Aggregates: 1..max, de-duplicated by name.
  size_t n_aggs =
      1 + rng->NextUint64(static_cast<uint64_t>(options_.max_aggregates));
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < n_aggs; ++i) {
    Aggregate agg = GenerateAggregate(rng);
    if (seen.insert(agg.name).second) q.aggregates.push_back(std::move(agg));
  }
  // Group by: a random columnset whose estimated group count (product of
  // distinct counts) stays within scope. Greedily grow the set so a single
  // high-cardinality column can still appear alone.
  if (!groupby_cols_.empty() && !rng->NextBool(options_.p_no_groupby)) {
    size_t n_cols = 1 + rng->NextUint64(static_cast<uint64_t>(
                            options_.max_groupby_cols));
    n_cols = std::min(n_cols, groupby_cols_.size());
    auto chosen =
        SampleWithoutReplacement(groupby_cols_.size(), n_cols, rng);
    size_t cardinality = 1;
    for (size_t i : chosen) {
      size_t next = cardinality * std::max<size_t>(1, groupby_cardinality_[i]);
      if (!q.group_by.empty() && next > options_.max_group_cardinality) {
        continue;
      }
      q.group_by.push_back(groupby_cols_[i]);
      cardinality = next;
    }
    std::sort(q.group_by.begin(), q.group_by.end());
  }
  // Predicate: 0..max clauses.
  size_t n_clauses =
      rng->NextUint64(static_cast<uint64_t>(options_.max_clauses) + 1);
  if (n_clauses > 0 && !pred_cols_.empty()) {
    std::vector<PredicatePtr> clauses;
    clauses.reserve(n_clauses);
    for (size_t i = 0; i < n_clauses; ++i) {
      clauses.push_back(GenerateClause(rng));
    }
    q.predicate = rng->NextBool(options_.p_or_tree)
                      ? Predicate::Or(std::move(clauses))
                      : Predicate::And(std::move(clauses));
  }
  return q;
}

std::vector<Query> QueryGenerator::GenerateSet(size_t n,
                                               uint64_t seed) const {
  RandomEngine rng(seed);
  std::vector<Query> out;
  std::unordered_set<std::string> seen;
  size_t attempts = 0;
  while (out.size() < n && attempts < n * 50 + 100) {
    ++attempts;
    Query q = Generate(&rng);
    std::string key = q.ToString(table_->schema());
    if (!seen.insert(key).second) continue;  // identical query text
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace ps3::workload
