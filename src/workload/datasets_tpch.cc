#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "workload/datasets.h"

namespace ps3::workload {

namespace {

using storage::ColumnType;
using storage::FieldDef;
using storage::Schema;
using storage::Table;

constexpr int kNations = 25;
constexpr int kRegions = 5;
constexpr int kBrands = 25;
constexpr int kContainers = 40;
constexpr int kShipModes = 7;
constexpr double kBaseDate = 8035;  // 1992-01-01 as a day ordinal
constexpr double kDateSpan = 7.0 * 365.0;

const char* kShipModeNames[kShipModes] = {"AIR",  "FOB",     "MAIL", "RAIL",
                                          "REG_AIR", "SHIP", "TRUCK"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT_SPECIFIED", "5-LOW"};
const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"};

}  // namespace

DatasetBundle MakeTpchStar(size_t rows, uint64_t seed) {
  Schema schema({
      {"l_quantity", ColumnType::kNumeric},
      {"l_extendedprice", ColumnType::kNumeric},
      {"l_discount", ColumnType::kNumeric},
      {"l_tax", ColumnType::kNumeric},
      {"l_shipdate", ColumnType::kNumeric},
      {"l_commitdate", ColumnType::kNumeric},
      {"l_receiptdate", ColumnType::kNumeric},
      {"o_totalprice", ColumnType::kNumeric},
      {"p_retailprice", ColumnType::kNumeric},
      {"p_size", ColumnType::kNumeric},
      {"ps_supplycost", ColumnType::kNumeric},
      {"o_year", ColumnType::kNumeric},
      {"l_year", ColumnType::kNumeric},
      {"l_returnflag", ColumnType::kCategorical},
      {"l_linestatus", ColumnType::kCategorical},
      {"l_shipmode", ColumnType::kCategorical},
      {"l_shipinstruct", ColumnType::kCategorical},
      {"o_orderpriority", ColumnType::kCategorical},
      {"o_orderstatus", ColumnType::kCategorical},
      {"c_mktsegment", ColumnType::kCategorical},
      {"p_brand", ColumnType::kCategorical},
      {"p_container", ColumnType::kCategorical},
      {"p_type", ColumnType::kCategorical},
      {"n1_name", ColumnType::kCategorical},
      {"n2_name", ColumnType::kCategorical},
      {"r1_name", ColumnType::kCategorical},
      {"r2_name", ColumnType::kCategorical},
  });
  auto table = std::make_shared<Table>(schema);

  RandomEngine rng(seed);
  // Zipf(1) skew over parts, customers and suppliers, as in the skewed
  // TPC-H generator the paper uses.
  ZipfSampler part_zipf(2000, 1.0);
  ZipfSampler cust_zipf(1500, 1.0);
  ZipfSampler supp_zipf(500, 1.0);

  // Part attributes are functions of the part id, so skew propagates into
  // brand/container/price distributions.
  auto part_brand = [](size_t part) {
    return static_cast<int>((part * 7919) % kBrands);
  };
  auto part_container = [](size_t part) {
    return static_cast<int>((part * 104729) % kContainers);
  };
  auto part_price = [](size_t part) {
    return 900.0 + static_cast<double>((part * 31) % 2000);
  };
  auto nation_of = [](size_t key) {
    return static_cast<int>((key * 613) % kNations);
  };

  for (size_t i = 0; i < rows; ++i) {
    size_t part = part_zipf.Sample(&rng);
    size_t cust = cust_zipf.Sample(&rng);
    size_t supp = supp_zipf.Sample(&rng);

    double quantity = 1.0 + static_cast<double>(rng.NextUint64(50));
    double retail = part_price(part);
    double extprice = quantity * retail / 10.0;
    double discount = 0.01 * static_cast<double>(rng.NextUint64(11));
    double tax = 0.01 * static_cast<double>(rng.NextUint64(9));

    // Ship date uniform over 7 years; order/commit/receipt nearby. Prices
    // drift mildly upward over time so date-sorted layouts carry signal
    // for SUM aggregates.
    double ship = kBaseDate + kDateSpan * rng.NextDouble();
    double drift = 1.0 + 0.1 * (ship - kBaseDate) / kDateSpan;
    extprice *= drift;
    double commit = ship - 5.0 - static_cast<double>(rng.NextUint64(60));
    double receipt = ship + 1.0 + static_cast<double>(rng.NextUint64(30));
    double o_year = std::floor(1992.0 + (ship - kBaseDate) / 365.0);
    double l_year = o_year;
    double totalprice = extprice * (1.0 + rng.NextDouble());

    int n1 = nation_of(cust);
    int n2 = nation_of(supp + 17);
    int r1 = n1 % kRegions;
    int r2 = n2 % kRegions;

    const char* returnflag =
        ship < kBaseDate + 0.45 * kDateSpan
            ? (rng.NextBool(0.5) ? "A" : "R")
            : "N";  // returns only exist for old shipments (as in TPC-H)
    const char* linestatus = ship < kBaseDate + 0.7 * kDateSpan ? "F" : "O";

    table->AppendRow(
        {quantity, extprice, discount, tax, ship, commit, receipt,
         totalprice, retail,
         1.0 + static_cast<double>((part * 13) % 50),
         retail * (0.4 + 0.2 * rng.NextDouble()), o_year, l_year},
        {returnflag, linestatus,
         kShipModeNames[rng.NextUint64(kShipModes)],
         StrFormat("INSTRUCT_%llu",
                   static_cast<unsigned long long>(rng.NextUint64(4))),
         kPriorities[rng.NextUint64(5)],
         rng.NextBool(0.5) ? "F" : (rng.NextBool(0.5) ? "O" : "P"),
         kSegments[cust % 5],
         StrFormat("Brand#%d", part_brand(part)),
         StrFormat("CONTAINER_%d", part_container(part)),
         StrFormat("TYPE_%d", static_cast<int>((part * 37) % 30)),
         StrFormat("NATION_%d", n1), StrFormat("NATION_%d", n2),
         StrFormat("REGION_%d", r1), StrFormat("REGION_%d", r2)});
  }
  table->Seal();

  DatasetBundle bundle;
  bundle.name = "tpch";
  bundle.table = std::move(table);
  bundle.default_sort = {"l_shipdate"};
  bundle.spec.groupby_columns = {
      "l_returnflag",    "l_linestatus", "l_shipmode", "o_orderpriority",
      "c_mktsegment",    "n1_name",      "r1_name",    "o_year",
      "l_year",
  };
  bundle.spec.predicate_columns = {
      "l_shipdate",  "l_commitdate", "l_receiptdate", "l_quantity",
      "l_discount",  "o_totalprice", "p_size",        "l_shipmode",
      "l_returnflag", "p_brand",     "p_container",   "n1_name",
      "c_mktsegment", "o_orderpriority",
  };
  using K = AggregateSpec::Kind;
  bundle.spec.aggregates = {
      {K::kCount, "", ""},
      {K::kSum, "l_quantity", ""},
      {K::kSum, "l_extendedprice", ""},
      {K::kAvg, "l_extendedprice", ""},
      {K::kAvg, "l_discount", ""},
      {K::kSum, "o_totalprice", ""},
      {K::kSumMargin, "l_extendedprice", "l_discount"},
      {K::kSumProduct, "l_extendedprice", "l_tax"},
  };
  return bundle;
}

}  // namespace ps3::workload
