#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "workload/datasets.h"

namespace ps3::workload {

namespace {

using storage::ColumnType;
using storage::Schema;
using storage::Table;

constexpr int kTenants = 200;
constexpr int kVersions = 167;  // §1: 167 distinct application versions
constexpr int kTimeZones = 30;

const char* kNetworkTypes[4] = {"Wifi", "Wired", "Cellular", "Unknown"};

}  // namespace

DatasetBundle MakeAria(size_t rows, uint64_t seed) {
  Schema schema({
      {"records_received_count", ColumnType::kNumeric},
      {"records_tried_to_send_count", ColumnType::kNumeric},
      {"records_sent_count", ColumnType::kNumeric},
      {"olsize", ColumnType::kNumeric},
      {"ol_w", ColumnType::kNumeric},
      {"infl", ColumnType::kNumeric},
      {"PipelineInfo_IngestionTime", ColumnType::kNumeric},
      {"TenantId", ColumnType::kCategorical},
      {"AppInfo_Version", ColumnType::kCategorical},
      {"UserInfo_TimeZone", ColumnType::kCategorical},
      {"DeviceInfo_NetworkType", ColumnType::kCategorical},
  });
  auto table = std::make_shared<Table>(schema);

  RandomEngine rng(seed);
  // Version skew calibrated so the most popular of the 167 versions covers
  // about half the dataset (the motivating skew of §1); Zipf(1.9) gives
  // rank-1 mass ~0.5 over 167 values.
  ZipfSampler version_zipf(kVersions, 1.9);
  ZipfSampler tenant_zipf(kTenants, 1.1);

  for (size_t i = 0; i < rows; ++i) {
    size_t tenant = tenant_zipf.Sample(&rng);
    // Tenants adopt versions in cohorts: the tail of the version
    // distribution is rotated per tenant (TenantId-sorted layouts then
    // cluster versions, which the occurrence bitmaps pick up). The
    // dominant rank-0 version is left untouched so it keeps its ~50%
    // global share (§1).
    size_t version = version_zipf.Sample(&rng);
    if (version != 0) {
      version = 1 + (version - 1 + tenant % 7) % (kVersions - 1);
    }

    // Payload sizes: heavy-tailed, tenant-dependent scale.
    double tenant_scale = 1.0 + static_cast<double>(tenant % 13);
    double received =
        std::floor(tenant_scale * (1.0 + rng.NextExponential(0.02)));
    double tried = std::floor(received * (0.8 + 0.2 * rng.NextDouble()));
    double sent = std::floor(tried * (0.7 + 0.3 * rng.NextDouble()));
    double olsize = tenant_scale * (64.0 + rng.NextExponential(0.001));
    double ol_w = 1.0 + rng.NextExponential(0.1);
    double infl = rng.NextDouble() * 3.0;
    double ingestion = 1.0e6 + static_cast<double>(i);  // arrival order

    table->AppendRow(
        {received, tried, sent, olsize, ol_w, infl, ingestion},
        {StrFormat("Tenant_%llu", static_cast<unsigned long long>(tenant)),
         StrFormat("v%zu.%zu.%zu", version / 100, (version / 10) % 10,
                   version % 10),
         StrFormat("TZ_%llu",
                   static_cast<unsigned long long>(rng.NextUint64(
                       kTimeZones))),
         kNetworkTypes[(tenant + rng.NextUint64(2)) % 4]});
  }
  table->Seal();

  DatasetBundle bundle;
  bundle.name = "aria";
  bundle.table = std::move(table);
  bundle.default_sort = {"TenantId"};
  bundle.spec.groupby_columns = {
      "AppInfo_Version",
      "UserInfo_TimeZone",
      "DeviceInfo_NetworkType",
  };
  bundle.spec.predicate_columns = {
      "records_received_count", "records_tried_to_send_count",
      "records_sent_count",     "olsize",
      "ol_w",                   "infl",
      "PipelineInfo_IngestionTime",
      "TenantId",               "AppInfo_Version",
      "DeviceInfo_NetworkType",
  };
  using K = AggregateSpec::Kind;
  bundle.spec.aggregates = {
      {K::kCount, "", ""},
      {K::kSum, "records_received_count", ""},
      {K::kSum, "records_sent_count", ""},
      {K::kSum, "olsize", ""},
      {K::kAvg, "olsize", ""},
      {K::kAvg, "infl", ""},
  };
  return bundle;
}

}  // namespace ps3::workload
