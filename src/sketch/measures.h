// Measures sketch (§3.1): min, max, first and second moments of a numeric
// column, plus the same measures over log(x) when every value is positive.
// O(1) space, one pass.
#ifndef PS3_SKETCH_MEASURES_H_
#define PS3_SKETCH_MEASURES_H_

#include <cstddef>
#include <cstdint>

namespace ps3::sketch {

class Measures {
 public:
  void Update(double v);

  size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  double sum_sq() const { return sum_sq_; }

  /// First moment E[x]; 0 if empty.
  double mean() const;
  /// Second moment E[x^2]; 0 if empty.
  double mean_sq() const;
  /// Population standard deviation; 0 if empty.
  double std_dev() const;

  /// True when all observed values were > 0, so the log measures are valid.
  bool has_log() const { return count_ > 0 && all_positive_; }
  double log_mean() const;
  double log_mean_sq() const;
  double log_min() const { return log_min_; }
  double log_max() const { return log_max_; }

  /// Serialized footprint: fixed set of doubles + count.
  size_t SerializedBytes() const;

 private:
  size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  bool all_positive_ = true;
  double log_sum_ = 0.0;
  double log_sum_sq_ = 0.0;
  double log_min_ = 0.0;
  double log_max_ = 0.0;
};

}  // namespace ps3::sketch

#endif  // PS3_SKETCH_MEASURES_H_
