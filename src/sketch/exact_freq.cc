#include "sketch/exact_freq.h"

#include <cassert>

namespace ps3::sketch {

void ExactFrequencyTable::Update(int64_t key) {
  ++n_;
  if (!valid_) return;
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    ++it->second;
    return;
  }
  if (counts_.size() >= max_distinct_) {
    valid_ = false;
    counts_.clear();
    return;
  }
  counts_.emplace(key, 1);
}

double ExactFrequencyTable::Frequency(int64_t key) const {
  assert(valid_);
  if (n_ == 0) return 0.0;
  auto it = counts_.find(key);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(n_);
}

size_t ExactFrequencyTable::SerializedBytes() const {
  if (!valid_) return 1;
  return counts_.size() * (sizeof(int64_t) + sizeof(uint32_t)) + 1;
}

}  // namespace ps3::sketch
