// Exact frequency table for low-cardinality categorical columns (§3.2's
// "special case": if a string column has a small number of distinct values,
// all distinct values and their frequencies are stored exactly). Disables
// itself when the domain exceeds the cap.
#ifndef PS3_SKETCH_EXACT_FREQ_H_
#define PS3_SKETCH_EXACT_FREQ_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace ps3::sketch {

class ExactFrequencyTable {
 public:
  static constexpr size_t kDefaultMaxDistinct = 256;

  explicit ExactFrequencyTable(size_t max_distinct = kDefaultMaxDistinct)
      : max_distinct_(max_distinct) {}

  void Update(int64_t key);

  /// False once the column proved to have more than max_distinct values;
  /// the table is then empty and queries must fall back to other sketches.
  bool valid() const { return valid_; }
  size_t rows_seen() const { return n_; }
  size_t num_distinct() const { return counts_.size(); }

  /// Exact frequency fraction of `key`; 0 when absent. Must not be called
  /// on an invalid table.
  double Frequency(int64_t key) const;

  const std::unordered_map<int64_t, uint64_t>& counts() const {
    return counts_;
  }

  size_t SerializedBytes() const;

 private:
  size_t max_distinct_;
  bool valid_ = true;
  size_t n_ = 0;
  std::unordered_map<int64_t, uint64_t> counts_;
};

}  // namespace ps3::sketch

#endif  // PS3_SKETCH_EXACT_FREQ_H_
