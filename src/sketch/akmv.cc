#include "sketch/akmv.h"

#include "common/hash.h"

namespace ps3::sketch {

void AkmvSketch::UpdateHash(uint64_t hash) {
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    ++it->second;
    return;
  }
  if (entries_.size() < static_cast<size_t>(k_)) {
    entries_.emplace(hash, 1);
    return;
  }
  // Full: only admit hashes smaller than the current k-th minimum.
  auto last = std::prev(entries_.end());
  if (hash < last->first) {
    entries_.erase(last);
    entries_.emplace(hash, 1);
  }
}

double AkmvSketch::EstimateDistinct() const {
  if (entries_.empty()) return 0.0;
  if (!saturated()) return static_cast<double>(entries_.size());
  double u_k = HashToUnit(entries_.rbegin()->first);
  if (u_k <= 0.0) return static_cast<double>(entries_.size());
  return static_cast<double>(k_ - 1) / u_k;
}

double AkmvSketch::avg_frequency() const {
  if (entries_.empty()) return 0.0;
  return sum_frequency() / static_cast<double>(entries_.size());
}

double AkmvSketch::max_frequency() const {
  uint64_t m = 0;
  for (const auto& [h, c] : entries_) {
    if (c > m) m = c;
  }
  return static_cast<double>(m);
}

double AkmvSketch::min_frequency() const {
  if (entries_.empty()) return 0.0;
  uint64_t m = ~0ULL;
  for (const auto& [h, c] : entries_) {
    if (c < m) m = c;
  }
  return static_cast<double>(m);
}

double AkmvSketch::sum_frequency() const {
  double s = 0.0;
  for (const auto& [h, c] : entries_) s += static_cast<double>(c);
  return s;
}

size_t AkmvSketch::SerializedBytes() const {
  // hash (8B) + count (4B) per tracked value, plus k.
  return entries_.size() * (sizeof(uint64_t) + sizeof(uint32_t)) +
         sizeof(uint32_t);
}

}  // namespace ps3::sketch
