// Heavy hitters by lossy counting (§3.1; Manku & Motwani, VLDB'02).
// Tracks items appearing in at least `support` fraction of the rows; the
// dictionary is bounded by O(1/support) entries after pruning. Keys are
// 64-bit value identities: dictionary codes for categorical columns, the
// raw bit pattern for numeric columns.
#ifndef PS3_SKETCH_HEAVY_HITTER_H_
#define PS3_SKETCH_HEAVY_HITTER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ps3::sketch {

struct HeavyHitterEntry {
  int64_t key;
  uint64_t count;  // lower-bound count (true count - delta <= count)
};

class HeavyHitters {
 public:
  /// `support`: minimum frequency fraction to report (default 1%, giving a
  /// dictionary of at most ~100 items as in the paper). `error` defaults to
  /// support / 10.
  explicit HeavyHitters(double support = 0.01, double error = 0.0);

  void Update(int64_t key);

  /// Items with estimated frequency >= (support - error) * n, descending
  /// by count.
  std::vector<HeavyHitterEntry> Items() const;

  size_t rows_seen() const { return n_; }
  double support() const { return support_; }

  /// Number of reported heavy hitters.
  size_t NumHeavyHitters() const { return Items().size(); }
  /// Average / max frequency (as fractions of rows) among heavy hitters.
  double AvgFrequency() const;
  double MaxFrequency() const;

  size_t SerializedBytes() const;

 private:
  struct Cell {
    uint64_t count;
    uint64_t delta;
  };

  void MaybePrune();

  double support_;
  double error_;
  size_t bucket_width_;
  size_t n_ = 0;
  size_t current_bucket_ = 1;
  std::unordered_map<int64_t, Cell> cells_;
};

}  // namespace ps3::sketch

#endif  // PS3_SKETCH_HEAVY_HITTER_H_
