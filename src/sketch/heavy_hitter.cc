#include "sketch/heavy_hitter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ps3::sketch {

HeavyHitters::HeavyHitters(double support, double error)
    : support_(support), error_(error > 0.0 ? error : support / 10.0) {
  assert(support_ > 0.0 && support_ <= 1.0);
  bucket_width_ = static_cast<size_t>(std::ceil(1.0 / error_));
}

void HeavyHitters::Update(int64_t key) {
  ++n_;
  auto it = cells_.find(key);
  if (it != cells_.end()) {
    ++it->second.count;
  } else {
    cells_.emplace(key, Cell{1, static_cast<uint64_t>(current_bucket_ - 1)});
  }
  if (n_ % bucket_width_ == 0) {
    MaybePrune();
    ++current_bucket_;
  }
}

void HeavyHitters::MaybePrune() {
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->second.count + it->second.delta <= current_bucket_) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<HeavyHitterEntry> HeavyHitters::Items() const {
  std::vector<HeavyHitterEntry> out;
  if (n_ == 0) return out;
  double threshold = (support_ - error_) * static_cast<double>(n_);
  for (const auto& [key, cell] : cells_) {
    if (static_cast<double>(cell.count) >= threshold) {
      out.push_back({key, cell.count});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitterEntry& a, const HeavyHitterEntry& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  return out;
}

double HeavyHitters::AvgFrequency() const {
  auto items = Items();
  if (items.empty() || n_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& e : items) s += static_cast<double>(e.count);
  return s / static_cast<double>(items.size()) / static_cast<double>(n_);
}

double HeavyHitters::MaxFrequency() const {
  auto items = Items();
  if (items.empty() || n_ == 0) return 0.0;
  return static_cast<double>(items[0].count) / static_cast<double>(n_);
}

size_t HeavyHitters::SerializedBytes() const {
  // Only reported heavy hitters are persisted: key (8B) + count (4B).
  return Items().size() * (sizeof(int64_t) + sizeof(uint32_t));
}

}  // namespace ps3::sketch
