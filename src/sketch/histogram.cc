#include "sketch/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cmath>

namespace ps3::sketch {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             int num_buckets) {
  assert(num_buckets > 0);
  EquiDepthHistogram h;
  h.n_ = values.size();
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());

  const size_t n = values.size();
  const size_t b = static_cast<size_t>(num_buckets);
  // Edge i sits at the i/b quantile. Duplicate-heavy data can produce
  // repeated edges; such degenerate buckets simply carry zero width.
  h.edges_.resize(b + 1);
  for (size_t i = 0; i <= b; ++i) {
    size_t idx = std::min(n - 1, (i * n) / b);
    h.edges_[i] = (i == b) ? values.back() : values[idx];
  }
  h.edges_[0] = values.front();

  // Exact per-bucket counts: bucket j covers (edges[j], edges[j+1]] except
  // bucket 0 which also includes its left edge.
  h.counts_.assign(b, 0);
  h.cum_.assign(b, 0);
  for (size_t j = 0; j < b; ++j) {
    auto lo_it = (j == 0) ? values.begin()
                          : std::upper_bound(values.begin(), values.end(),
                                             h.edges_[j]);
    auto hi_it =
        std::upper_bound(values.begin(), values.end(), h.edges_[j + 1]);
    h.counts_[j] = static_cast<size_t>(hi_it - lo_it);
    h.cum_[j] = (j == 0 ? 0 : h.cum_[j - 1]) + h.counts_[j];
  }
  // Rounding at quantile edges cannot lose rows: last cum must equal n.
  assert(h.cum_.back() == n);
  return h;
}

double EquiDepthHistogram::CdfLe(double x) const {
  if (n_ == 0) return 0.0;
  if (x < edges_.front()) return 0.0;
  if (x >= edges_.back()) return 1.0;
  // Find bucket j with edges[j] <= x < edges[j+1].
  size_t j = static_cast<size_t>(
      std::upper_bound(edges_.begin(), edges_.end(), x) - edges_.begin());
  assert(j >= 1);
  j -= 1;
  if (j >= counts_.size()) j = counts_.size() - 1;
  double below = (j == 0) ? 0.0 : static_cast<double>(cum_[j - 1]);
  double width = edges_[j + 1] - edges_[j];
  double frac = width > 0.0 ? (x - edges_[j]) / width : 1.0;
  return (below + frac * static_cast<double>(counts_[j])) /
         static_cast<double>(n_);
}

double EquiDepthHistogram::RangeSelectivity(double lo, double hi,
                                            bool lo_inclusive,
                                            bool hi_inclusive) const {
  if (n_ == 0 || lo > hi) return 0.0;
  // Continuous approximation: inclusivity only matters at exact ties, which
  // the interpolation smooths over; nudge by an epsilon of the data span so
  // closed endpoints capture edge-valued rows.
  double span = edges_.empty() ? 0.0 : (edges_.back() - edges_.front());
  double eps = span > 0.0 ? span * 1e-12 : 1e-12;
  double hi_adj = hi_inclusive ? hi : hi - eps;
  double lo_adj = lo_inclusive ? lo - eps : lo;
  double sel = CdfLe(hi_adj) - CdfLe(lo_adj);
  return sel < 0.0 ? 0.0 : sel;
}

EquiDepthHistogram::Bounds EquiDepthHistogram::RangeSelectivityBounds(
    double lo, double hi, bool lo_inclusive, bool hi_inclusive) const {
  Bounds b;
  if (n_ == 0 || lo > hi) return b;
  if (hi < edges_.front() || lo > edges_.back()) return b;
  double lower_rows = 0.0, upper_rows = 0.0;
  for (size_t j = 0; j < counts_.size(); ++j) {
    double bl = edges_[j], bh = edges_[j + 1];
    // Overlap test is permissive at edges (closed on both sides) so the
    // upper bound never misses boundary-valued rows.
    bool overlaps = bh >= lo && bl <= hi;
    if (!overlaps) continue;
    upper_rows += static_cast<double>(counts_[j]);
    // Containment for the lower bound must respect endpoint exclusivity:
    // bucket j holds values in (bl, bh] (bucket 0 also holds bl).
    bool hi_ok = hi_inclusive ? bh <= hi : bh < hi;
    bool lo_ok = bl >= lo;
    if (j == 0 && !lo_inclusive && bl <= lo) lo_ok = false;
    if (lo_ok && hi_ok) lower_rows += static_cast<double>(counts_[j]);
  }
  b.lower = lower_rows / static_cast<double>(n_);
  b.upper = upper_rows / static_cast<double>(n_);
  return b;
}

double EquiDepthHistogram::PointSelectivity(double x) const {
  if (n_ == 0) return 0.0;
  if (x < edges_.front() || x > edges_.back()) return 0.0;
  // Walk all buckets containing x. Duplicate-valued data produces repeated
  // edges, so several zero-width buckets can sit at the same value; their
  // mass is exact. A non-degenerate bucket containing x contributes via a
  // coarse density model: assume `width + 1` equally likely integer-ish
  // values, which keeps the estimate conservative for wide buckets.
  double mass = 0.0;
  for (size_t j = 0; j < counts_.size(); ++j) {
    double bl = edges_[j], bh = edges_[j + 1];
    bool contains = (j == 0) ? (x >= bl && x <= bh) : (x > bl && x <= bh);
    bool degenerate_at_x = bl == bh && bl == x;
    if (!contains && !degenerate_at_x) continue;
    double bucket_mass =
        static_cast<double>(counts_[j]) / static_cast<double>(n_);
    double width = bh - bl;
    mass += width <= 0.0 ? bucket_mass
                         : bucket_mass / std::max(1.0, width + 1.0);
  }
  return mass;
}

size_t EquiDepthHistogram::SerializedBytes() const {
  return edges_.size() * sizeof(double) + counts_.size() * sizeof(uint32_t) +
         sizeof(uint64_t);
}

}  // namespace ps3::sketch
