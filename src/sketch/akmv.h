// AKMV (augmented k-minimum-values) sketch for distinct-value estimation
// (§3.1; Beyer et al., SIGMOD'07). Tracks the k smallest distinct hashed
// values of a column together with their multiplicities in the partition.
#ifndef PS3_SKETCH_AKMV_H_
#define PS3_SKETCH_AKMV_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace ps3::sketch {

class AkmvSketch {
 public:
  static constexpr int kDefaultK = 128;

  explicit AkmvSketch(int k = kDefaultK) : k_(k) {}

  /// Feeds one already-hashed value (hash identity == value identity).
  void UpdateHash(uint64_t hash);

  /// Number of (distinct) hashes currently tracked; min(k, true ndv).
  size_t num_tracked() const { return entries_.size(); }
  bool saturated() const { return entries_.size() >= static_cast<size_t>(k_); }

  /// Estimated number of distinct values: exact when not saturated,
  /// otherwise the KMV estimator (k-1)/u_k with u_k the k-th smallest
  /// hash mapped to (0, 1).
  double EstimateDistinct() const;

  /// Frequency statistics of the tracked values (the k min-hash values form
  /// a uniform sample of the distinct values). Counts are per-partition
  /// multiplicities. All return 0 for an empty sketch.
  double avg_frequency() const;
  double max_frequency() const;
  double min_frequency() const;
  double sum_frequency() const;

  size_t SerializedBytes() const;

  const std::map<uint64_t, uint64_t>& entries() const { return entries_; }

 private:
  int k_;
  std::map<uint64_t, uint64_t> entries_;  // hash -> multiplicity
};

}  // namespace ps3::sketch

#endif  // PS3_SKETCH_AKMV_H_
