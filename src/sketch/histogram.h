// Equi-depth histogram (§3.1): 10 buckets by default. For string columns
// the histogram is built over hashes of the values mapped to [0, 1).
// Construction sorts a copy of the column slice (O(Rb log Rb), as in the
// paper's Table 1); storage is O(#buckets).
#ifndef PS3_SKETCH_HISTOGRAM_H_
#define PS3_SKETCH_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ps3::sketch {

class EquiDepthHistogram {
 public:
  static constexpr int kDefaultBuckets = 10;

  /// Builds from (unsorted) values. `values` is consumed by sorting a copy.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  int num_buckets = kDefaultBuckets);

  size_t total_count() const { return n_; }
  size_t num_buckets() const { return counts_.size(); }
  const std::vector<double>& edges() const { return edges_; }
  const std::vector<size_t>& bucket_counts() const { return counts_; }

  double min() const { return edges_.empty() ? 0.0 : edges_.front(); }
  double max() const { return edges_.empty() ? 0.0 : edges_.back(); }

  /// Estimated fraction of values <= x (continuous interpolation within a
  /// bucket). Exact at bucket edges.
  double CdfLe(double x) const;

  /// Estimated fraction of values in the closed/open range, using the
  /// continuous approximation; `lo > hi` yields 0.
  double RangeSelectivity(double lo, double hi, bool lo_inclusive,
                          bool hi_inclusive) const;

  /// Hard bounds on the range selectivity at bucket granularity: `lower`
  /// counts only buckets fully contained in the range, `upper` counts every
  /// bucket that overlaps it. upper == 0 guarantees no row matches (the
  /// perfect-recall property the partition filter relies on, §3.2).
  struct Bounds {
    double lower = 0.0;
    double upper = 0.0;
  };
  Bounds RangeSelectivityBounds(double lo, double hi, bool lo_inclusive = true,
                                bool hi_inclusive = true) const;

  /// Estimated fraction of rows equal to x: mass of x's bucket scaled by
  /// the bucket's value width (a coarse density estimate, refined by the
  /// exact-frequency and heavy-hitter paths in the selectivity estimator).
  double PointSelectivity(double x) const;

  size_t SerializedBytes() const;

 private:
  std::vector<double> edges_;   // num_buckets + 1 boundaries
  std::vector<size_t> counts_;  // rows per bucket
  std::vector<size_t> cum_;     // cumulative rows at bucket ends
  size_t n_ = 0;
};

}  // namespace ps3::sketch

#endif  // PS3_SKETCH_HISTOGRAM_H_
