#include "sketch/measures.h"

#include <cmath>

namespace ps3::sketch {

void Measures::Update(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  sum_ += v;
  sum_sq_ += v * v;
  if (v > 0.0) {
    double lv = std::log(v);
    if (all_positive_) {
      if (count_ == 0) {
        log_min_ = log_max_ = lv;
      } else {
        if (lv < log_min_) log_min_ = lv;
        if (lv > log_max_) log_max_ = lv;
      }
      log_sum_ += lv;
      log_sum_sq_ += lv * lv;
    }
  } else {
    all_positive_ = false;
    log_sum_ = log_sum_sq_ = log_min_ = log_max_ = 0.0;
  }
  ++count_;
}

double Measures::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Measures::mean_sq() const {
  return count_ == 0 ? 0.0 : sum_sq_ / static_cast<double>(count_);
}

double Measures::std_dev() const {
  if (count_ == 0) return 0.0;
  double var = mean_sq() - mean() * mean();
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Measures::log_mean() const {
  return has_log() ? log_sum_ / static_cast<double>(count_) : 0.0;
}

double Measures::log_mean_sq() const {
  return has_log() ? log_sum_sq_ / static_cast<double>(count_) : 0.0;
}

size_t Measures::SerializedBytes() const {
  // count + {min,max,sum,sumsq} + 4 log measures + flag byte.
  return sizeof(uint64_t) + 8 * sizeof(double) + 1;
}

}  // namespace ps3::sketch
